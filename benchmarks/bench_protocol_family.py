"""E11 — the protocol family: Figure 4, alternating bit, Stenning.

The paper (after [HZar]) presents these as refinements of one
knowledge-based protocol.  Regenerated here: all three satisfy the
specification over the channels that meet the liveness assumption, and the
randomized executor compares their message costs across loss rates — the
*shape* to reproduce is that message counts grow with the loss rate and
that all three protocols track each other (they implement the same
knowledge strategy).
"""

import pytest

from repro.predicates import Predicate
from repro.seqtrans import (
    LOSSY,
    SeqTransParams,
    bounded_loss,
    build_alternating_bit,
    build_standard_protocol,
    build_stenning,
    check_spec,
    delivered_all,
)
from repro.sim import average_messages

from .conftest import once, record

PARAMS = SeqTransParams(length=1)

BUILDERS = {
    "figure4": (build_standard_protocol, ("snd_data", "rcv_ack")),
    "alternating_bit": (build_alternating_bit, ("ab_snd_data", "ab_rcv_ack")),
    "stenning": (build_stenning, ("st_snd_data", "st_rcv_ack")),
}


def test_family_correctness(benchmark):
    """Every member satisfies (34)+(35) over the bounded-loss channel."""

    def run():
        verdicts = {}
        for name, (builder, _) in BUILDERS.items():
            program = builder(PARAMS, bounded_loss(1))
            verdicts[name] = check_spec(program, PARAMS).satisfied
        return verdicts

    verdicts = once(benchmark, run)
    assert all(verdicts.values())
    record(benchmark, **verdicts)


@pytest.mark.parametrize("loss_weight", [0.0, 1.0, 3.0])
def test_family_message_cost_vs_loss(benchmark, loss_weight):
    """Message counts per full delivery, as channel loss pressure grows.

    ``loss_weight`` is the scheduling weight of each ``lose_*`` statement
    relative to protocol statements (0 = reliable-like behaviour of the
    lossy channel; larger = messages dropped more often before receipt).
    """

    def run():
        costs = {}
        for name, (builder, transmit) in BUILDERS.items():
            program = builder(PARAMS, LOSSY)
            weights = {"lose_data": loss_weight, "lose_ack": loss_weight}
            goal = delivered_all(program.space, PARAMS)
            stats = average_messages(
                program,
                goal,
                transmit,
                runs=15,
                seed=1991,
                weights=weights,
                max_steps=50_000,
            )
            costs[name] = round(stats["messages"], 1)
        return costs

    costs = once(benchmark, run)
    record(benchmark, loss_weight=loss_weight, **costs)
    assert all(v >= 1.0 for v in costs.values())


def test_cost_grows_with_loss(benchmark):
    """Sanity shape: for each protocol, more loss ⇒ no fewer messages."""

    def run():
        series = {name: [] for name in BUILDERS}
        for loss_weight in (0.0, 2.0, 6.0):
            for name, (builder, transmit) in BUILDERS.items():
                program = builder(PARAMS, LOSSY)
                goal = delivered_all(program.space, PARAMS)
                stats = average_messages(
                    program,
                    goal,
                    transmit,
                    runs=15,
                    seed=7,
                    weights={"lose_data": loss_weight, "lose_ack": loss_weight},
                    max_steps=50_000,
                )
                series[name].append(stats["messages"])
        return series

    series = once(benchmark, run)
    for name, values in series.items():
        assert values[0] <= values[-1] * 1.25, (name, values)
    record(
        benchmark,
        **{name: [round(v, 1) for v in values] for name, values in series.items()},
    )
