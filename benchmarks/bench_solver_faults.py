"""Fault-tolerant solver: supervision overhead and recovery cost.

Three claims about the shard supervisor (repro.robustness), measured on
the same 24-state KBP as the solver speedup bench:

* **overhead** — the supervised sweep (leases, deadlines, the FaultLog)
  costs ≤5% over the PR-3 bare loop (``FaultPolicy.off()``) when nothing
  goes wrong;
* **recovery** — a worker crash mid-sweep is retried and the report is
  byte-identical to the fault-free one;
* **resume** — a killed checkpointed solve resumes without re-checking
  journaled candidates.

Set ``SOLVER_FAULTS_BENCH_QUICK=1`` for CI smoke runs (smaller sweep; the
overhead ceiling is only asserted full-size, where pool startup noise is
amortized).  Results append to ``BENCH_solver_faults.json``.
"""

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.core import solve_si_parallel
from repro.robustness import FaultPlan, FaultPolicy, verify_journal

from .bench_kbp_solver import _speedup_kbp
from .conftest import once, record

_TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_solver_faults.json"
_RESULTS: dict = {}

_QUICK = os.environ.get("SOLVER_FAULTS_BENCH_QUICK") == "1"
#: Free state-bits of the sweep: 2^14 candidates full, 2^10 quick.
_FREE_BITS = 10 if _QUICK else 14
_WORKERS = 8
_OVERHEAD_CEILING = 0.05


def _program():
    return _speedup_kbp(random.Random(2024), _FREE_BITS)


def _same(a, b) -> bool:
    return a.candidates_checked == b.candidates_checked and tuple(
        p.mask for p in a.solutions
    ) == tuple(p.mask for p in b.solutions)


def test_supervision_overhead(benchmark):
    """Fault-free supervised sweep vs the PR-3 bare loop: ≤5% slower."""
    program = _program()

    def timed(policy):
        # Best-of-3: each run pays its own pool startup, so the minimum
        # isolates the steady-state sweep the ceiling is a claim about.
        best, report = float("inf"), None
        for _ in range(1 if _QUICK else 3):
            start = time.perf_counter()
            report = solve_si_parallel(
                program, workers=_WORKERS, fault_policy=policy
            )
            best = min(best, time.perf_counter() - start)
        return best, report

    def run():
        bare_s, bare = timed(FaultPolicy.off())
        supervised_s, supervised = timed(FaultPolicy())
        return bare_s, bare, supervised_s, supervised

    bare_s, bare, supervised_s, supervised = once(benchmark, run)
    assert _same(bare, supervised)
    assert supervised.fault_log is not None and supervised.fault_log.clean
    overhead = supervised_s / bare_s - 1.0
    if not _QUICK:
        assert overhead <= _OVERHEAD_CEILING, (
            f"supervision costs {overhead:.1%} over the bare loop "
            f"(ceiling {_OVERHEAD_CEILING:.0%} on 2^{_FREE_BITS} candidates)"
        )
    _RESULTS["free_bits"] = _FREE_BITS
    _RESULTS["workers"] = _WORKERS
    _RESULTS["quick"] = _QUICK
    _RESULTS["supervision_overhead"] = round(overhead, 4)
    record(
        benchmark,
        candidates=bare.candidates_checked,
        bare_s=round(bare_s, 3),
        supervised_s=round(supervised_s, 3),
        supervision_overhead=round(overhead, 4),
    )


def test_crash_recovery_identical(benchmark):
    """One worker crash mid-sweep: retried, and the report is unchanged."""
    program = _program()

    def run():
        clean = solve_si_parallel(program, workers=_WORKERS)
        start = time.perf_counter()
        faulted = solve_si_parallel(
            program,
            workers=_WORKERS,
            fault_plan=FaultPlan.parse("crash@0"),
        )
        faulted_s = time.perf_counter() - start
        return clean, faulted, faulted_s

    clean, faulted, faulted_s = once(benchmark, run)
    assert _same(clean, faulted)
    assert faulted.fault_log.count("worker-crash") >= 1
    _RESULTS["crash_recovered"] = True
    record(
        benchmark,
        crash_recovered=True,
        crashes_seen=faulted.fault_log.count("worker-crash"),
        faulted_s=round(faulted_s, 3),
    )


def test_kill_and_resume_skips_journaled_work(benchmark, tmp_path):
    """Killed after 2 journaled shards; the resume re-checks none of them."""
    from repro.robustness import SimulatedKill

    program = _program()
    journal = tmp_path / "solve.journal"

    def run():
        with pytest.raises(SimulatedKill):
            solve_si_parallel(
                program,
                workers=_WORKERS,
                checkpoint=journal,
                fault_plan=FaultPlan.parse("kill@2"),
            )
        journaled = verify_journal(journal)["candidates_checked"]
        resumed = solve_si_parallel(program, workers=_WORKERS, checkpoint=journal)
        return journaled, resumed

    journaled, resumed = once(benchmark, run)
    assert resumed.fault_log.candidates_resumed == journaled > 0
    assert resumed.candidates_checked == 2**_FREE_BITS
    _RESULTS["resume_skipped_candidates"] = journaled
    record(benchmark, resume_skipped_candidates=journaled)
    _write_trajectory()


def _write_trajectory() -> None:
    entry = {
        "bench": "solver_faults",
        "timestamp": round(time.time()),
        "space": 24,
        **_RESULTS,
    }
    try:
        existing = json.loads(_TRAJECTORY.read_text())
        if not isinstance(existing, list):
            existing = [existing]
    except (FileNotFoundError, json.JSONDecodeError):
        existing = []
    existing.append(entry)
    _TRAJECTORY.write_text(json.dumps(existing, indent=2) + "\n")
