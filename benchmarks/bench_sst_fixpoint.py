"""E6 — eqs. (1)–(4): the sst fixpoint, plus an iteration-count ablation.

No table in the paper corresponds to this directly; it regenerates the
*existence/uniqueness/monotonicity* claims (2)–(4) and profiles the Kleene
chain of eq. (3) across model sizes — the design choice DESIGN.md calls
out (explicit Kleene iteration vs. anything cleverer).
"""

import random

from repro.predicates import Predicate
from repro.statespace import BoolDomain, IntRangeDomain, StateSpace, Variable
from repro.transformers import sp_program, sst, strongest_invariant
from repro.unity import Program, Statement, const, var

from .conftest import once, record


def _chain_program(width: int) -> Program:
    """A token passes down a chain of cells — diameter grows with width."""
    space = StateSpace(
        [Variable("pos", IntRangeDomain(0, width))]
        + [Variable("done", BoolDomain())]
    )
    statements = [
        Statement(
            name="advance",
            targets=("pos",),
            exprs=(var("pos") + const(1),),
            guard=var("pos") < const(width),
        ),
        Statement(
            name="finish",
            targets=("done",),
            exprs=(const(True),),
            guard=var("pos").eq(const(width)),
        ),
    ]
    init = Predicate.from_callable(space, lambda s: s["pos"] == 0 and not s["done"])
    return Program(space, init, statements, name=f"chain{width}")


def test_sst_iteration_scaling(benchmark):
    """Kleene iterations track the diameter, not the space size."""

    def run():
        profile = {}
        for width in (4, 16, 64, 256):
            program = _chain_program(width)
            result = sst(program, program.init)
            profile[width] = result.iterations
        return profile

    profile = once(benchmark, run)
    # The chain program's diameter is width + 1 (+ the final no-change check).
    for width, iterations in profile.items():
        assert width + 1 <= iterations <= width + 3
    record(benchmark, **{f"iters_width_{w}": i for w, i in profile.items()})


def test_sst_properties_on_random_programs(benchmark):
    """(2) existence + fixpoint, (4) monotonicity, on seeded random programs."""
    from repro.statespace import space_of

    rng = random.Random(5)
    space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())

    def build_random_program(k: int) -> Program:
        names = list(space.names)
        statements = []
        for s in range(2):
            target = rng.choice(names)
            rhs = const(rng.random() < 0.5)
            guard_var = rng.choice(names)
            statements.append(
                Statement(
                    name=f"s{s}", targets=(target,), exprs=(rhs,), guard=var(guard_var)
                )
            )
        return Program(
            space, Predicate(space, rng.getrandbits(space.size) | 1), statements,
            name=f"rnd{k}",
        )

    def run():
        checked = 0
        for k in range(30):
            program = build_random_program(k)
            p = Predicate(space, rng.getrandbits(space.size))
            q = p | Predicate(space, rng.getrandbits(space.size))
            sp_ = sst(program, p).predicate
            sq_ = sst(program, q).predicate
            assert p.entails(sp_)
            assert sp_program(program, sp_).entails(sp_)  # (2): stable
            assert sp_.entails(sq_)  # (4): monotone
            checked += 1
        return checked

    checked = once(benchmark, run)
    assert checked == 30
    record(benchmark, random_programs=checked, eq2_eq4_violations=0)


def test_si_of_protocol_scale_model(benchmark):
    """SI computation on the L=1 sequence-transmission model (972 states)."""
    from repro.seqtrans import RELIABLE, SeqTransParams, build_standard_protocol

    program = build_standard_protocol(SeqTransParams(length=1), RELIABLE)
    si = once(benchmark, strongest_invariant, program)
    assert 0 < si.count() < program.space.size
    record(benchmark, space=program.space.size, si_states=si.count())
