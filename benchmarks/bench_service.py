"""Knowledge as a service: hot-cache vs cold-solve query throughput.

The claim behind DESIGN.md §13's content-addressed store: a repeated
query costs O(artifact bytes) — a raw-bytes sha256 and a socket write —
not O(candidate sweep).  Measured end to end through a real server
subprocess and the JSONL client: one cold query of ``kbp24-f14`` (2^14
candidates, certified), then a burst of hot queries for the same key.

Asserted full-size: the hot path serves the *byte-identical* artifact at
≥50× the cold rate, with zero solver progress ticks.  Set
``SERVICE_BENCH_QUICK=1`` for CI smoke runs (2^8 candidates; byte
identity and cache discipline still asserted, the 50× floor only
full-size where the sweep dominates startup noise).

Results append to ``BENCH_service.json``.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.service.client import ServiceClient

from .conftest import once, record

_TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_service.json"
_SRC = str(Path(__file__).resolve().parent.parent / "src")

_QUICK = os.environ.get("SERVICE_BENCH_QUICK") == "1"
#: 2^14 candidates full-size (the acceptance scale), 2^8 quick.
_MODEL = "kbp24-f8" if _QUICK else "kbp24-f14"
_HOT_QUERIES = 5
_SPEEDUP_FLOOR = 50.0


class _Server:
    """A service subprocess on a throwaway cache dir."""

    def __init__(self, tmp_path: Path):
        self.port_file = tmp_path / "port"
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service.server",
             "--cache-dir", str(tmp_path / "cache"),
             "--port-file", str(self.port_file)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 30
        while not (self.port_file.exists() and self.port_file.read_text().strip()):
            if time.monotonic() > deadline or self.proc.poll() is not None:
                raise RuntimeError("service did not come up")
            time.sleep(0.02)
        self.port = int(self.port_file.read_text().strip())

    def stop(self):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()


def test_hot_vs_cold_queries(benchmark, tmp_path):
    server = _Server(tmp_path)
    try:
        def run():
            with ServiceClient(port=server.port, timeout=1200.0) as client:
                start = time.perf_counter()
                cold = client.solve(_MODEL)
                cold_s = time.perf_counter() - start
                hots = []
                start = time.perf_counter()
                for _ in range(_HOT_QUERIES):
                    hots.append(client.solve(_MODEL))
                hot_s = (time.perf_counter() - start) / _HOT_QUERIES
            return cold, cold_s, hots, hot_s

        cold, cold_s, hots, hot_s = once(benchmark, run)
    finally:
        server.stop()

    assert cold.cache == "cold" and cold.progress_events > 0
    for hot in hots:
        # The acceptance triple: a hit, byte-identical, no solver ticks.
        assert hot.cache == "hit"
        assert hot.data == cold.data
        assert hot.progress_events == 0
    speedup = cold_s / hot_s
    if not _QUICK:
        assert speedup >= _SPEEDUP_FLOOR, (
            f"hot queries only {speedup:.1f}x faster than cold on {_MODEL} "
            f"(floor {_SPEEDUP_FLOOR:.0f}x)"
        )
    record(
        benchmark,
        model=_MODEL,
        quick=_QUICK,
        artifact_bytes=len(cold.data),
        cold_s=round(cold_s, 4),
        hot_s=round(hot_s, 5),
        hot_qps=round(1.0 / hot_s, 1),
        cold_qps=round(1.0 / cold_s, 3),
        speedup=round(speedup, 1),
    )
    _write_trajectory(
        model=_MODEL,
        quick=_QUICK,
        artifact_bytes=len(cold.data),
        cold_s=round(cold_s, 4),
        hot_s=round(hot_s, 5),
        speedup=round(speedup, 1),
    )


def _write_trajectory(**results) -> None:
    entry = {
        "bench": "service",
        "timestamp": round(time.time()),
        **results,
    }
    try:
        existing = json.loads(_TRAJECTORY.read_text())
        if not isinstance(existing, list):
            existing = [existing]
    except (FileNotFoundError, json.JSONDecodeError):
        existing = []
    existing.append(entry)
    _TRAJECTORY.write_text(json.dumps(existing, indent=2) + "\n")
