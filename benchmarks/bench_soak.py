"""Adversarial soak harness: sweep cost, determinism, and resume.

Three claims about the soak matrix (repro.sim.soak) on the CI quick
configuration (12 cells: {bounded-loss, lossy, reliable} × {weighted-random,
greedy-loss} × {no crash, receiver crash}):

* **cross-checked** — every cell's observed verdict is consistent with the
  model-checked ground truth, and the E13 pair shows up as *proven*
  livelocks (not timeouts): greedy-loss refutes the unrestricted LOSSY
  channel, bounded-loss survives it;
* **deterministic** — the same matrix produces a byte-identical journal on
  every run;
* **resumable** — a soak killed mid-sweep (``kill@N``) resumes without
  re-running journaled cells and still ends with the uninterrupted bytes.

Results append to ``BENCH_soak.json``.
"""

import json
import time
from pathlib import Path

import pytest

from repro.robustness import FaultPlan, SimulatedKill
from repro.sim import quick_config, run_soak
from repro.sim.soak import LIVELOCK_VERDICT

from .conftest import once, record

_TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_soak.json"
_RESULTS: dict = {}


def test_soak_matrix_cross_checked(benchmark, tmp_path):
    """The quick matrix sweeps clean, with the E13 livelocks proven."""
    config = quick_config()

    def run():
        start = time.perf_counter()
        report = run_soak(config, tmp_path / "soak.jsonl")
        return report, time.perf_counter() - start

    report, elapsed = once(benchmark, run)
    assert report.consistent, report.inconsistencies
    livelocked = [k for k, v in report.verdicts.items() if v == LIVELOCK_VERDICT]
    # Exactly the greedy-loss × LOSSY cells livelock; bounded-loss delivers.
    assert livelocked and all(
        "lossy" in key and "greedy-loss" in key for key in livelocked
    )
    assert all(
        v == "delivered"
        for k, v in report.verdicts.items()
        if "bounded_loss" in k
    )
    _RESULTS["cells"] = report.total
    _RESULTS["livelocks_proven"] = len(livelocked)
    _RESULTS["consistent"] = report.consistent
    _RESULTS["sweep_s"] = round(elapsed, 3)
    record(
        benchmark,
        cells=report.total,
        livelocks_proven=len(livelocked),
        consistent=report.consistent,
        sweep_s=round(elapsed, 3),
    )


def test_soak_deterministic(benchmark, tmp_path):
    """Same matrix, same seeds → byte-identical journals."""
    config = quick_config()

    def run():
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_soak(config, a)
        run_soak(config, b)
        return a.read_bytes() == b.read_bytes()

    identical = once(benchmark, run)
    assert identical
    _RESULTS["byte_identical"] = True
    record(benchmark, byte_identical=True)


def test_soak_kill_and_resume(benchmark, tmp_path):
    """Killed after 5 journaled cells; the resume re-runs none of them."""
    config = quick_config()

    def run():
        reference = tmp_path / "ref.jsonl"
        interrupted = tmp_path / "int.jsonl"
        run_soak(config, reference)
        plan = FaultPlan.parse("kill@5", scratch=str(tmp_path / "faults"))
        with pytest.raises(SimulatedKill):
            run_soak(config, interrupted, fault_plan=plan)
        report = run_soak(config, interrupted)
        return report, interrupted.read_bytes() == reference.read_bytes()

    report, identical = once(benchmark, run)
    assert report.resumed == 5
    assert identical
    _RESULTS["resume_skipped_cells"] = report.resumed
    record(benchmark, resume_skipped_cells=report.resumed, byte_identical=identical)
    _write_trajectory()


def _write_trajectory() -> None:
    entry = {
        "bench": "soak",
        "timestamp": round(time.time()),
        **_RESULTS,
    }
    try:
        existing = json.loads(_TRAJECTORY.read_text())
        if not isinstance(existing, list):
            existing = [existing]
    except (FileNotFoundError, json.JSONDecodeError):
        existing = []
    existing.append(entry)
    _TRAJECTORY.write_text(json.dumps(existing, indent=2) + "\n")
