"""E3 — eqs. (14)–(18): the knowledge transformer satisfies S5.

Verified exhaustively (all predicates) on the paper's Figure-2 program and
on a batch of random programs, plus the anti-monotonicity property (20).
"""

import random

from repro.core import (
    KnowledgeOperator,
    check_antimonotonicity_in_si,
    verify_all,
)
from repro.figures import fig2_program, fig2_weak_init
from repro.core import solve_si
from repro.predicates import Predicate, var_true
from repro.statespace import BoolDomain, space_of

from .conftest import once, record


def test_s5_on_fig2_operator(benchmark):
    """All S5 laws for the solved Figure-2 protocol, both processes."""
    program = fig2_program()
    si = solve_si(program.with_init(fig2_weak_init(program))).strongest()
    operator = KnowledgeOperator(
        program.space, si, {p.name: p.variables for p in program.processes.values()}
    )

    def run():
        return [verify_all(operator, process) for process in ("P0", "P1")]

    violations = once(benchmark, run)
    assert all(v == [] for v in violations)
    record(benchmark, laws_checked="14-19,21,23,24", processes=2, violations=0)


def test_s5_on_random_operators(benchmark):
    """S5 across 20 random SIs / views on a 3-Boolean space (exhaustive in p)."""
    space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
    rng = random.Random(1991)

    def run():
        total_violations = 0
        for _ in range(20):
            si = Predicate(space, rng.getrandbits(space.size) | 1)
            views = {"P": ["a"], "Q": ["a", "b"]}
            operator = KnowledgeOperator(space, si, views)
            for process in views:
                total_violations += len(verify_all(operator, process, samples=64))
        return total_violations

    violations = once(benchmark, run)
    assert violations == 0
    record(benchmark, operators=20, violations=violations)


def test_eq20_antimonotonicity(benchmark):
    """(20): K_i p is anti-monotonic with respect to SI (exhaustive)."""
    space = space_of(a=BoolDomain(), b=BoolDomain())
    strong_si = var_true(space, "a") | var_true(space, "b")
    weak = KnowledgeOperator(space, Predicate.true(space), {"P": ["a"]})
    strong = KnowledgeOperator(space, strong_si, {"P": ["a"]})
    violation = benchmark(check_antimonotonicity_in_si, weak, strong, "P")
    assert violation is None
    record(benchmark, antimonotone_in_si=True)
