"""E17 — "how processes learn" ([CM86], cited in the paper's Conclusion).

The temporal profile of knowledge acquisition in the transmission
protocol: the BFS knowledge frontier for the Receiver's knowledge of
``x_0``, the epistemic-depth ordering (the Receiver learns the value
strictly before the Sender learns that it has), and the effect of a
priori information (onset shifts to depth 0).
"""

from repro.core import KnowledgeOperator
from repro.predicates import disjunction
from repro.runs import knowledge_onset_by_depth
from repro.seqtrans import SeqTransParams, bounded_loss, build_standard_protocol
from repro.seqtrans.standard import fact_x_k
from repro.transformers import strongest_invariant

from .conftest import once, record

PARAMS = SeqTransParams(length=1)


def _instance(apriori=None):
    params = SeqTransParams(length=1, apriori=apriori)
    program = build_standard_protocol(params, bounded_loss(1))
    operator = KnowledgeOperator.of_program(program, strongest_invariant(program))
    return program, operator


def test_onset_frontier(benchmark):
    program, operator = _instance()
    fact = fact_x_k(program.space, 0, "a")
    profile = once(
        benchmark, knowledge_onset_by_depth, program, "Receiver", fact, operator
    )
    assert profile.knowing[0] == 0
    assert profile.earliest_onset() >= 2
    record(
        benchmark,
        new_states_by_depth=list(profile.new_states),
        knowing_by_depth=list(profile.knowing),
        earliest_onset=profile.earliest_onset(),
    )


def test_apriori_onset_shift(benchmark):
    def run():
        out = {}
        for label, apriori in (("none", None), ("x0_known", {0: "a"})):
            program, operator = _instance(apriori)
            fact = fact_x_k(program.space, 0, "a")
            profile = knowledge_onset_by_depth(program, "Receiver", fact, operator)
            out[label] = profile.earliest_onset()
        return out

    onsets = once(benchmark, run)
    assert onsets["x0_known"] == 0
    assert onsets["none"] >= 2
    record(benchmark, **{f"onset_{k}": v for k, v in onsets.items()})


def test_epistemic_depth_ordering(benchmark):
    """time(K_R value) < time(K_S K_R value) on matched seeds."""
    program, operator = _instance()
    space = program.space
    knows_value = disjunction(
        space,
        [
            operator.knows("Receiver", fact_x_k(space, 0, alpha))
            for alpha in ("a", "b")
        ],
    )

    def run():
        # Matched seeds: the same schedule measured against both goals.
        from repro.sim import Executor

        k_s = operator.knows("Sender", knows_value)
        firsts, seconds = [], []
        for seed in range(15):
            run1 = Executor(program, seed=seed).run(knows_value, max_steps=30_000)
            run2 = Executor(program, seed=seed).run(k_s, max_steps=30_000)
            firsts.append(run1.steps)
            seconds.append(run2.steps)
        return sum(firsts) / len(firsts), sum(seconds) / len(seconds)

    first_mean, second_mean = once(benchmark, run)
    assert second_mean > first_mean
    record(
        benchmark,
        receiver_learns_value=round(first_mean, 1),
        sender_learns_receiver_knows=round(second_mean, 1),
    )
