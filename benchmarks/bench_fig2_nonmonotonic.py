"""E2 — Figure 2: SI is **not monotonic** in the initial condition.

Paper claim: with init = ¬y the strongest invariant is ¬y and true ↦ z
holds; with the *stronger* init = ¬y ∧ x the strongest invariant is x and
true ↦ z fails — "neither safety nor liveness properties ... are
necessarily preserved when the initial conditions are strengthened".
"""

from repro.core import compare_inits, resolve_at, solve_si
from repro.figures import fig2_program, fig2_strong_init, fig2_weak_init
from repro.predicates import Predicate, var_true
from repro.proofs import check_leads_to_both

from .conftest import record


def test_fig2_si_comparison(benchmark):
    program = fig2_program()
    weak = fig2_weak_init(program)
    strong = fig2_strong_init(program)
    report = benchmark(compare_inits, program, weak, strong)
    space = program.space
    assert report.si_weak == ~var_true(space, "y")
    assert report.si_strong == var_true(space, "x")
    assert not report.monotonic
    record(
        benchmark,
        si_weak="¬y",
        si_strong="x",
        monotonic=report.monotonic,
    )


def test_fig2_liveness_flip(benchmark):
    program = fig2_program()
    space = program.space
    z = var_true(space, "z")

    def verdicts():
        out = {}
        for label, init in (
            ("weak", fig2_weak_init(program)),
            ("strong", fig2_strong_init(program)),
        ):
            variant = program.with_init(init)
            si = solve_si(variant).strongest()
            resolved = resolve_at(variant, si)
            out[label] = check_leads_to_both(resolved, Predicate.true(space), z, si)
        return out

    result = benchmark(verdicts)
    assert result == {"weak": True, "strong": False}
    record(
        benchmark,
        liveness_weak_init=result["weak"],
        liveness_strong_init=result["strong"],
    )


def test_fig2_safety_flip(benchmark):
    program = fig2_program()
    space = program.space
    not_y = ~var_true(space, "y")

    def verdicts():
        weak_si = solve_si(program.with_init(fig2_weak_init(program))).strongest()
        strong_si = solve_si(program.with_init(fig2_strong_init(program))).strongest()
        return weak_si.entails(not_y), strong_si.entails(not_y)

    weak_ok, strong_ok = benchmark(verdicts)
    assert weak_ok and not strong_ok
    record(benchmark, invariant_noty_weak=weak_ok, invariant_noty_strong=strong_ok)
