"""Backend comparison: packed numpy words vs the seed implementations.

Measures the kernels the refactor replaced, on a space big enough for the
``"auto"`` policy to pick the numpy backend (≥ 4096 states):

* ``wcyl`` — the seed ran a pure-Python O(size) loop per call;
* ``sp_program`` over a Kleene chain — the seed round-tripped every
  predicate through int masks per statement per iteration, and had no
  transformer cache;
* ``solve_si_iterative`` — asserted bit-identical under both backends
  (the backend is an optimization, never a semantics knob).

Alongside the pytest-benchmark records, the measured speedups are appended
as a trajectory entry to ``BENCH_backends.json`` at the repo root.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import numpy as np

from repro.predicates import Predicate, get_backend, using_backend, wcyl
from repro.predicates.npbits import array_to_mask, mask_to_array
from repro.statespace import BoolDomain, IntRangeDomain, StateSpace, Variable
from repro.transformers import sp_program
from repro.unity import Program, Statement, const, var

from .conftest import once, record

_TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_backends.json"
_RESULTS: dict = {}


def _bench_program(n_pos: int = 256, n_aux: int = 8) -> Program:
    """A token chain × a free-running counter: 2 · n_pos · n_aux states."""
    space = StateSpace(
        [
            Variable("pos", IntRangeDomain(0, n_pos - 1)),
            Variable("k", IntRangeDomain(0, n_aux - 1)),
            Variable("go", BoolDomain()),
        ]
    )
    statements = [
        Statement(
            name="advance",
            targets=("pos",),
            exprs=(var("pos") + const(1),),
            guard=(var("go")) & (var("pos") < const(n_pos - 1)),
        ),
        Statement(
            name="spin",
            targets=("k",),
            exprs=(var("k") + const(1),),
            guard=var("k") < const(n_aux - 1),
        ),
        Statement(name="start", targets=("go",), exprs=(const(True),)),
    ]
    init = Predicate.from_callable(
        space, lambda s: s["pos"] == 0 and s["k"] == 0 and not s["go"]
    )
    return Program(
        space,
        init,
        statements,
        processes={"P": ("pos", "go"), "Q": ("k",)},
        name="bench_backends",
    )


# ----------------------------------------------------------------------
# seed reference implementations (copied from the pre-backend revision)
# ----------------------------------------------------------------------


def _seed_wcyl(names, p: Predicate) -> Predicate:
    space = p.space
    group_of, n_groups = space.cylinder_partition(names)
    all_true = [True] * n_groups
    mask = p.mask
    for i in range(space.size):
        if not mask >> i & 1:
            all_true[group_of[i]] = False
    out = 0
    for i in range(space.size):
        if all_true[group_of[i]]:
            out |= 1 << i
    return Predicate(space, out)


def _seed_sp_program(program: Program, p: Predicate) -> Predicate:
    """The seed's vectorized path: an int→array→int round-trip per statement."""
    size = program.space.size
    out = 0
    for stmt in program.statements:
        successors = program.successor_np(stmt)
        sources = np.flatnonzero(mask_to_array(p.mask, size))
        image = np.zeros(size, dtype=bool)
        image[successors[sources]] = True
        out |= array_to_mask(image)
    return Predicate(program.space, out)


def _timeit(fn, repeats: int) -> float:
    fn()  # warm caches / tables outside the measurement
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def test_wcyl_speedup_vs_seed(benchmark):
    """Grouped numpy reduction vs the seed's per-state Python loop."""
    program = _bench_program()
    space = program.space
    assert space.size >= 4096
    mask = random.Random(3).getrandbits(space.size)
    names = ("pos", "go")

    def measure():
        seed_s = _timeit(lambda: _seed_wcyl(names, Predicate(space, mask)), 10)
        with using_backend("numpy"):
            p = Predicate(space, mask)
            fast_s = _timeit(lambda: wcyl(names, p), 10)
            fast = wcyl(names, p)
        assert fast.mask == _seed_wcyl(names, Predicate(space, mask)).mask
        return seed_s, fast_s

    seed_s, fast_s = once(benchmark, measure)
    speedup = seed_s / fast_s
    _RESULTS["wcyl_speedup"] = round(speedup, 1)
    record(
        benchmark,
        space=space.size,
        seed_us=round(seed_s * 1e6, 1),
        numpy_us=round(fast_s * 1e6, 1),
        speedup=round(speedup, 1),
    )
    assert speedup >= 3.0


def test_sp_program_chain_speedup_vs_seed(benchmark):
    """A 50-step ``x := SP.x ∨ x`` chain — the sst workload of eq. (3).

    The numpy backend keeps the chain in array form and the transformer
    cache absorbs the post-stabilization iterations; the seed recomputed
    and round-tripped every step.
    """
    program = _bench_program()
    space = program.space
    assert space.size >= 4096
    mask = random.Random(3).getrandbits(space.size)
    steps = 50

    def seed_chain() -> int:
        x = Predicate(space, mask)
        for _ in range(steps):
            x = Predicate(space, _seed_sp_program(program, x).mask | x.mask)
        return x.mask

    def backend_chain() -> int:
        with using_backend("numpy"):
            x = Predicate(space, mask)
            for _ in range(steps):
                x = sp_program(program, x) | x
            return x.mask

    def cold_chain() -> int:
        # A fresh cache per run: measures the kernels, not memoization.
        program.transformer_cache.clear()
        return backend_chain()

    def measure():
        seed_s = _timeit(seed_chain, 5)
        backend_chain()  # warm the kernel tables outside the timing
        cold_s = _timeit(cold_chain, 5)
        warm_s = _timeit(backend_chain, 5)  # cache persists, as in solve_si
        assert seed_chain() == backend_chain()
        return seed_s, cold_s, warm_s

    seed_s, cold_s, warm_s = once(benchmark, measure)
    speedup = seed_s / warm_s
    _RESULTS["sp_chain_speedup"] = round(speedup, 1)
    _RESULTS["sp_chain_cold_speedup"] = round(seed_s / cold_s, 1)
    record(
        benchmark,
        space=space.size,
        chain_steps=steps,
        seed_ms=round(seed_s * 1e3, 2),
        numpy_cold_ms=round(cold_s * 1e3, 2),
        numpy_warm_ms=round(warm_s * 1e3, 2),
        cold_speedup=round(seed_s / cold_s, 1),
        warm_speedup=round(speedup, 1),
    )
    assert seed_s / cold_s >= 2.0  # kernels alone
    assert speedup >= 3.0  # kernels + transformer cache


def test_sp_wp_kernels_int_vs_numpy(benchmark):
    """Per-call sp/wp kernel timings, int vs numpy, same 4096-state space."""
    from repro.transformers import sp_statement, wp_statement

    program = _bench_program()
    space = program.space
    mask = random.Random(9).getrandbits(space.size)
    stmt = program.statement("advance")

    def measure():
        timings = {}
        for name in ("int", "numpy"):
            with using_backend(name):
                p = Predicate(space, mask)
                program.kernel_table(get_backend(name), stmt)  # warm the table

                def one_pass():
                    program.transformer_cache.clear()
                    sp_statement(program, stmt, p)
                    wp_statement(program, stmt, p)

                timings[name] = _timeit(one_pass, 10)
        return timings

    timings = once(benchmark, measure)
    ratio = timings["int"] / timings["numpy"]
    _RESULTS["sp_wp_int_vs_numpy"] = round(ratio, 1)
    record(
        benchmark,
        space=space.size,
        int_us=round(timings["int"] * 1e6, 1),
        numpy_us=round(timings["numpy"] * 1e6, 1),
        numpy_speedup_over_int=round(ratio, 1),
    )
    assert ratio >= 1.0  # at 4096 states the packed kernels must already win


def test_solve_si_iterative_identical_across_backends(benchmark):
    """The backend must not change any eq.-25 verdict, only the wall clock."""
    from repro.core import solve_si, solve_si_iterative
    from repro.figures import fig1_program, fig2_program, fig2_strong_init, fig2_weak_init

    def run():
        verdicts = {}
        timings = {}
        for name in ("int", "numpy"):
            with using_backend(name):
                start = time.perf_counter()
                fig1 = solve_si_iterative(fig1_program())
                fig2 = fig2_program()
                sis = tuple(
                    solve_si(fig2.with_init(init(fig2))).strongest().fingerprint().hex()
                    for init in (fig2_weak_init, fig2_strong_init)
                )
                timings[name] = time.perf_counter() - start
                verdicts[name] = (fig1.converged, len(fig1.cycle), sis)
        return verdicts, timings

    verdicts, timings = once(benchmark, run)
    assert verdicts["int"] == verdicts["numpy"]
    converged, cycle_len, (weak_si, strong_si) = verdicts["int"]
    assert not converged and cycle_len == 2  # Figure 1: no solution
    assert weak_si != strong_si  # Figure 2: non-monotonicity
    _RESULTS["solve_si_identical"] = True
    record(
        benchmark,
        fig1_cycle=cycle_len,
        int_s=round(timings["int"], 3),
        numpy_s=round(timings["numpy"], 3),
    )
    _write_trajectory()


def _write_trajectory() -> None:
    entry = {
        "bench": "backends",
        "timestamp": round(time.time()),
        "space": _bench_program().space.size,
        **_RESULTS,
    }
    try:
        existing = json.loads(_TRAJECTORY.read_text())
        if not isinstance(existing, list):
            existing = [existing]
    except (FileNotFoundError, json.JSONDecodeError):
        existing = []
    existing.append(entry)
    _TRAJECTORY.write_text(json.dumps(existing, indent=2) + "\n")
