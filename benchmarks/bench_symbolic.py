"""Explicit vs symbolic crossover on the factored sequence-transmission model.

Sweeps ``build_symbolic_protocol`` over message lengths and times the
eq.-(3) ``sst`` chain under the explicit int backend and the ROBDD
backend on the same instance:

* at small ``L`` both run and the chains are asserted bit-identical —
  below ``ARRAY_RELATION_MAX`` the robdd backend deliberately builds
  its relations from the same exact successor arrays as the explicit
  backends (identical ``GuardDomainError`` timing), so the explicit
  sweep wins there and ``"auto"`` is right to keep picking it;
* past that window the expression compiler takes over and the symbolic
  chain is orders of magnitude faster (the crossover sits near 2^14
  states); past ``REPRO_MAX_EXPLICIT_STATES`` the explicit route
  *refuses outright* — the headline point is ``L = 10`` (> 2^40
  states) completing in well under a second.

The crossover curve (state bits vs wall time per backend) is appended as
a trajectory entry to ``BENCH_symbolic.json`` at the repo root.

Set ``SYMBOLIC_BENCH_QUICK=1`` for CI smoke runs (drops the slowest
explicit point; the refusal/completion assertions are unchanged).
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import pytest

from repro.predicates import limits, using_backend
from repro.predicates.limits import ExplicitStateLimitError
from repro.seqtrans import SeqTransParams, build_symbolic_protocol
from repro.transformers import sst

from .conftest import once, record

_TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_symbolic.json"
_RESULTS: dict = {}

_QUICK = os.environ.get("SYMBOLIC_BENCH_QUICK") == "1"

# Lengths where the explicit int backend still runs (L=3 is ~90k states
# and takes seconds to build its successor tables — skipped in quick mode).
_EXPLICIT_LENGTHS = (1, 2) if _QUICK else (1, 2, 3)
# The symbolic backend is timed on the same instances plus the scale point.
_SYMBOLIC_ONLY_LENGTHS = (10,)


def _timed_sst(length: int, backend: str):
    """Build the factored model fresh and run one full sst chain."""
    with using_backend(backend):
        program = build_symbolic_protocol(SeqTransParams(length=length))
        start = time.perf_counter()
        result = sst(program, program.init)
        elapsed = time.perf_counter() - start
    chain = tuple(q.fingerprint() for q in result.chain)
    return elapsed, result.iterations, chain, program.space.size


def test_crossover_curve(benchmark):
    """Both backends on the same instances: identical chains, diverging cost."""

    def measure():
        curve = []
        for length in _EXPLICIT_LENGTHS:
            int_s, int_iters, int_chain, states = _timed_sst(length, "int")
            bdd_s, bdd_iters, bdd_chain, _ = _timed_sst(length, "robdd")
            assert int_chain == bdd_chain and int_iters == bdd_iters
            curve.append(
                {
                    "L": length,
                    "states": states,
                    "bits": round(math.log2(states), 1),
                    "int_ms": round(int_s * 1e3, 2),
                    "robdd_ms": round(bdd_s * 1e3, 2),
                }
            )
        return curve

    curve = once(benchmark, measure)
    _RESULTS["curve"] = curve
    _RESULTS["chains_identical"] = True
    record(
        benchmark,
        points=len(curve),
        max_explicit_bits=curve[-1]["bits"],
        **{f"L{p['L']}_int_ms": p["int_ms"] for p in curve},
        **{f"L{p['L']}_robdd_ms": p["robdd_ms"] for p in curve},
    )


def test_symbolic_scale_completes_where_explicit_refuses(benchmark):
    """The 2^40-state point: refusal on int, sub-second chain on robdd."""

    def measure():
        points = []
        for length in _SYMBOLIC_ONLY_LENGTHS:
            params = SeqTransParams(length=length)
            with using_backend("int"):
                with pytest.raises(ExplicitStateLimitError):
                    build_symbolic_protocol(params)
            bdd_s, iters, _, states = _timed_sst(length, "robdd")
            assert states > limits.get_limit("explicit")
            points.append(
                {
                    "L": length,
                    "bits": round(math.log2(states), 1),
                    "robdd_ms": round(bdd_s * 1e3, 2),
                    "iterations": iters,
                }
            )
        return points

    points = once(benchmark, measure)
    headline = points[-1]
    assert headline["bits"] >= 40
    _RESULTS["symbolic_scale"] = points
    _RESULTS["explicit_refused_past_limit"] = True
    record(
        benchmark,
        bits=headline["bits"],
        robdd_ms=headline["robdd_ms"],
        iterations=headline["iterations"],
    )
    _write_trajectory()


def _write_trajectory() -> None:
    entry = {
        "bench": "symbolic",
        "timestamp": round(time.time()),
        "quick": _QUICK,
        **_RESULTS,
    }
    try:
        existing = json.loads(_TRAJECTORY.read_text())
        if not isinstance(existing, list):
            existing = [existing]
    except (FileNotFoundError, json.JSONDecodeError):
        existing = []
    existing.append(entry)
    _TRAJECTORY.write_text(json.dumps(existing, indent=2) + "\n")
