"""E14 — eq. (25) with **multiple** solutions: knowledge-based mutex.

Completes the solution-count trichotomy the paper's theory allows
(Figure 1: none; Figure 2 & the sequence protocol: one; here: two) and
quantifies the paper's "results are valid for any solution" caveat:
mutual exclusion is guaranteed, progress is not.
"""

from repro.core import solve_si
from repro.puzzles import analyze_mutex, naive_mutex, token_mutex

from .conftest import once, record


def test_naive_mutex_two_solutions(benchmark):
    analysis = once(benchmark, analyze_mutex, naive_mutex())
    assert analysis.solutions == 2
    assert analysis.mutex_in_all
    assert analysis.liveness_guaranteed == (False, False)
    record(
        benchmark,
        solutions=analysis.solutions,
        mutex_in_all=analysis.mutex_in_all,
        liveness_guaranteed=str(analysis.liveness_guaranteed),
        per_solution_liveness=str(analysis.liveness),
    )


def test_token_mutex_unique_and_fair(benchmark):
    analysis = once(benchmark, analyze_mutex, token_mutex())
    assert analysis.solutions == 1
    assert analysis.mutex_in_all
    assert analysis.liveness_guaranteed == (True, True)
    record(
        benchmark,
        solutions=analysis.solutions,
        mutex_in_all=analysis.mutex_in_all,
        liveness_guaranteed=str(analysis.liveness_guaranteed),
    )


def test_solution_trichotomy(benchmark):
    """None / one / many — all three regimes of eq. (25), side by side."""
    from repro.figures import fig1_program, fig2_program

    def run():
        return {
            "fig1": len(solve_si(fig1_program()).solutions),
            "fig2": len(solve_si(fig2_program()).solutions),
            "naive_mutex": len(solve_si(naive_mutex()).solutions),
        }

    counts = once(benchmark, run)
    assert counts == {"fig1": 0, "fig2": 1, "naive_mutex": 2}
    record(benchmark, **counts)
