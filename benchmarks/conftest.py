"""Shared helpers for the experiment benchmarks.

Each benchmark regenerates one paper result (DESIGN.md §4).  Besides the
timing, every bench *asserts* the reproduced claim and records the
reproduced numbers in ``benchmark.extra_info`` so they land in the
pytest-benchmark JSON/console output.
"""

from __future__ import annotations

from typing import Any, Dict


def record(benchmark, **facts: Any) -> None:
    """Attach reproduced facts to the benchmark record and echo them."""
    for key, value in facts.items():
        benchmark.extra_info[key] = value
    summary = ", ".join(f"{k}={v}" for k, v in facts.items())
    print(f"\n  [reproduced] {summary}")


def once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
