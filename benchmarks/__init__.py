"""Experiment benchmarks regenerating every paper result (DESIGN.md §4)."""
