"""E8 — Figure 3 + eqs. (34)–(49): the knowledge-based protocol, end to end.

Regenerates, for a bounded instance over a bounded-loss channel:

* the solved SI of the KBP (eq. 25, Φ-iteration),
* safety (34) and liveness (35) of the resolved protocol, and
* the machine-checked replay of the paper's full liveness derivation
  (40)–(49) → (39) → (35) with its (Kbp-1)/(Kbp-2) leaves model-checked.
"""

from repro.seqtrans import (
    SeqTransParams,
    bounded_loss,
    build_standard_protocol,
    check_spec,
    prove_liveness,
    solve_kbp,
)

from .conftest import once, record

PARAMS = SeqTransParams(length=1)
CHANNEL = bounded_loss(1)


def test_kbp_si_solution(benchmark):
    solution = once(benchmark, solve_kbp, PARAMS, CHANNEL)
    assert solution is not None
    record(
        benchmark,
        phi_iterations=solution.iterations,
        si_states=solution.si.count(),
        space=solution.resolved.space.size,
    )


def test_kbp_satisfies_spec(benchmark):
    solution = solve_kbp(PARAMS, CHANNEL)
    report = once(benchmark, check_spec, solution.resolved, PARAMS, solution.si)
    assert report.satisfied
    record(
        benchmark,
        safety=report.safety_holds,
        liveness=list(report.liveness_holds),
    )


def test_liveness_derivation_replay(benchmark):
    """The paper's (37)–(49) proof tree, checked step by step."""
    program = build_standard_protocol(PARAMS, CHANNEL)
    proofs = once(benchmark, prove_liveness, program, PARAMS)
    record(
        benchmark,
        indices_proved=len(proofs.per_index),
        rule_applications=proofs.total_steps(),
    )


def test_liveness_derivation_replay_l2(benchmark):
    """The same derivation at L = 2 over a reliable channel (67 200 states)."""
    from repro.seqtrans import RELIABLE

    params = SeqTransParams(length=2)
    program = build_standard_protocol(params, RELIABLE)
    proofs = once(benchmark, prove_liveness, program, params)
    assert len(proofs.per_index) == 2
    record(
        benchmark,
        space=program.space.size,
        rule_applications=proofs.total_steps(),
    )
