"""Evidence-subsystem cost: emission overhead and replay-vs-resolve speedup.

Three questions, each answered on real workloads and appended as a
trajectory entry to ``BENCH_certificates.json`` at the repo root:

* **Emission overhead** — re-running E7's random-KBP sweep (the same 40
  programs, seed 1991) with ``emit_certificate=True``: building the
  eq.-(25) certificates (resolution tables, Kleene chains, refutation
  witnesses) should cost under ~15% on top of the bare solve, because the
  solver already traverses everything the certificate records.
* **Replay speedup** — checking the serialized Figure-1 no-solution
  artifact with the independent replayer vs re-deriving the verdict with
  ``solve_si`` from scratch.  Replay does no fixpoint search over
  candidates it hasn't been handed, so it should win.
* **Instrumentation** — the fixpoint chain lengths and transformer-cache
  hit/miss/eviction counters that now ride on every solve, reported so
  regressions in either are visible in the benchmark JSON.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from repro.certificates import loads as load_artifact
from repro.core import solve_si
from repro.figures import fig1_program
from repro.transformers import sst

from .bench_kbp_solver import _random_kbp
from .conftest import once, record

_TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_certificates.json"
_RESULTS: dict = {}

#: issue target: certificate emission may cost at most this fraction extra.
OVERHEAD_TARGET = 0.15
#: benchmark variance guard — fail loudly only well past the target.
OVERHEAD_HARD_LIMIT = 0.50


def _sweep_programs():
    rng = random.Random(1991)
    return [_random_kbp(rng) for _ in range(40)]


def test_emission_overhead_on_kbp_sweep(benchmark):
    """E7 sweep, bare vs certified: same verdicts, bounded extra cost."""

    def run():
        # Fresh programs per arm so transformer caches start cold for both.
        bare_programs = _sweep_programs()
        cert_programs = _sweep_programs()

        start = time.perf_counter()
        bare = [solve_si(p) for p in bare_programs]
        bare_s = time.perf_counter() - start

        start = time.perf_counter()
        certified = [
            solve_si(p, emit_certificate=True) for p in cert_programs
        ]
        cert_s = time.perf_counter() - start

        verdicts_agree = all(
            b.well_posed == c.well_posed
            and len(b.solutions) == len(c.solutions)
            for b, c in zip(bare, certified)
        )
        cache = cert_programs[0].transformer_cache.stats()
        return {
            "bare_s": bare_s,
            "cert_s": cert_s,
            "overhead": cert_s / bare_s - 1.0,
            "verdicts_agree": verdicts_agree,
            "all_certified": all(c.certificate is not None for c in certified),
            "cache_sample": cache,
        }

    out = once(benchmark, run)
    assert out["verdicts_agree"]
    assert out["all_certified"]
    assert out["overhead"] < OVERHEAD_HARD_LIMIT, (
        f"certificate emission cost {out['overhead']:.0%} extra; "
        f"target is {OVERHEAD_TARGET:.0%}"
    )
    _RESULTS["sweep_overhead"] = round(out["overhead"], 4)
    _RESULTS["sweep_overhead_within_target"] = out["overhead"] < OVERHEAD_TARGET
    record(
        benchmark,
        bare_s=round(out["bare_s"], 3),
        cert_s=round(out["cert_s"], 3),
        overhead_pct=round(100 * out["overhead"], 1),
        target_pct=100 * OVERHEAD_TARGET,
    )


def test_replay_vs_resolve_speedup(benchmark):
    """Checking the Figure-1 artifact beats re-deriving its verdict."""
    from repro.certificates.emit import certify_fig1
    from repro.certificates.replay import replay_artifact

    ((_, artifact),) = certify_fig1()
    wire = artifact.dumps()
    rounds = 5

    def run():
        start = time.perf_counter()
        for _ in range(rounds):
            outcome = replay_artifact(load_artifact(wire))
        replay_s = (time.perf_counter() - start) / rounds

        start = time.perf_counter()
        for _ in range(rounds):
            report = solve_si(fig1_program())
        resolve_s = (time.perf_counter() - start) / rounds
        return {
            "replay_s": replay_s,
            "resolve_s": resolve_s,
            "speedup": resolve_s / replay_s,
            "verdict": outcome.verdict,
            "well_posed": report.well_posed,
        }

    out = once(benchmark, run)
    assert out["verdict"] == "no-solution"
    assert not out["well_posed"]
    _RESULTS["replay_speedup"] = round(out["speedup"], 2)
    record(
        benchmark,
        replay_ms=round(1e3 * out["replay_s"], 2),
        resolve_ms=round(1e3 * out["resolve_s"], 2),
        speedup=round(out["speedup"], 2),
    )


def test_fixpoint_and_cache_instrumentation(benchmark):
    """Chain lengths and cache counters surfaced by the instrumented solvers."""
    from repro.certificates import build_model

    def run():
        # A fresh copy of the reliable-channel protocol: 3888 states, cold cache.
        program = build_model.__wrapped__("seqtrans-standard-L1-reliable").program
        result = sst(program, program.init)
        cache = program.transformer_cache.stats()
        return {
            "sst_name": result.name,
            "sst_iterations": result.iterations,
            "chain_len": len(result.chain),
            "cache": cache,
        }

    out = once(benchmark, run)
    assert out["sst_iterations"] >= 1
    assert out["chain_len"] == out["sst_iterations"] + 1
    assert out["cache"]["misses"] > 0
    assert "evictions" in out["cache"]
    _RESULTS["sst_iterations"] = out["sst_iterations"]
    _RESULTS["cache_hits"] = out["cache"]["hits"]
    _RESULTS["cache_misses"] = out["cache"]["misses"]
    _RESULTS["cache_evictions"] = out["cache"]["evictions"]
    record(
        benchmark,
        sst_iterations=out["sst_iterations"],
        cache_hits=out["cache"]["hits"],
        cache_misses=out["cache"]["misses"],
        cache_evictions=out["cache"]["evictions"],
    )
    _write_trajectory()


def _write_trajectory() -> None:
    entry = {
        "bench": "certificates",
        "timestamp": round(time.time()),
        **_RESULTS,
    }
    try:
        existing = json.loads(_TRAJECTORY.read_text())
        if not isinstance(existing, list):
            existing = [existing]
    except (FileNotFoundError, json.JSONDecodeError):
        existing = []
    existing.append(entry)
    _TRAJECTORY.write_text(json.dumps(existing, indent=2) + "\n")
