"""E4 — eqs. (11)–(12), (19), (21)–(22): junctivity of wcyl and K_i.

Includes the paper's explicit (12) counterexample (two integer variables).
"""

from repro.core import KnowledgeOperator, find_disjunctivity_counterexample
from repro.predicates import Predicate, var_cmp, wcyl
from repro.statespace import BoolDomain, IntRangeDomain, space_of
from repro.transformers import (
    check_finitely_disjunctive,
    check_monotonic,
    check_universally_conjunctive,
)

from .conftest import once, record


def test_wcyl_junctivity_profile(benchmark):
    """(8)+(11)+(12): wcyl is monotone and universally conjunctive, not disjunctive."""
    space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
    transform = lambda p: wcyl(["a", "b"], p)

    def run():
        return (
            check_monotonic(transform, space),
            check_universally_conjunctive(transform, space),
            check_finitely_disjunctive(transform, space),
        )

    monotone, conjunctive, disjunctive = once(benchmark, run)
    assert monotone is None
    assert conjunctive is None
    assert disjunctive is not None
    record(
        benchmark,
        monotone=True,
        universally_conjunctive=True,
        finitely_disjunctive=False,
    )


def test_eq12_papers_counterexample(benchmark):
    """The section-3 example: wcyl.x over integer x, y."""
    space = space_of(x=IntRangeDomain(-2, 2), y=IntRangeDomain(-2, 2))
    x_pos = var_cmp(space, "x", ">", 0)
    y_pos = var_cmp(space, "y", ">", 0)

    def run():
        left = wcyl(["x"], x_pos & y_pos)
        right = wcyl(["x"], x_pos & ~y_pos)
        union = wcyl(["x"], (x_pos & y_pos) | (x_pos & ~y_pos))
        return left, right, union

    left, right, union = benchmark(run)
    assert left.is_false() and right.is_false()
    assert union == x_pos
    record(
        benchmark,
        wcyl_x_of_conj1="false",
        wcyl_x_of_conj2="false",
        wcyl_x_of_union="x>0",
    )


def test_k_universal_conjunctivity_and_nondisjunctivity(benchmark):
    """(21) + (22) for a program-derived operator, exhaustively."""
    space = space_of(a=BoolDomain(), b=BoolDomain())
    si = Predicate.from_callable(space, lambda s: s["a"] or not s["b"])
    operator = KnowledgeOperator(space, si, {"P": ["a"]})

    def run():
        conjunctive = check_universally_conjunctive(
            lambda p: operator.knows("P", p), space
        )
        witness = find_disjunctivity_counterexample(operator, "P")
        return conjunctive, witness

    conjunctive, witness = benchmark(run)
    assert conjunctive is None  # (21)
    assert witness is not None  # (22)
    record(benchmark, universally_conjunctive=True, disjunctive=False)
