"""E1 — Figure 1: the knowledge-based protocol with **no solution**.

Paper claim (section 4): "There is no possible choice for SI for which the
resulting K_0 ¬x will result in a standard protocol which actually yields
this strongest invariant."

Regenerated here three ways: exhaustive refutation of every candidate SI,
the cycling Φ-iteration, and the non-monotonicity of ŜP.
"""

from repro.core import solve_si, solve_si_iterative, sp_hat
from repro.figures import fig1_program
from repro.transformers import check_monotonic

from .conftest import record


def test_fig1_exhaustive_refutation(benchmark):
    program = fig1_program()
    report = benchmark(solve_si, program)
    assert not report.well_posed
    record(
        benchmark,
        solutions=len(report.solutions),
        candidates_checked=report.candidates_checked,
        well_posed=report.well_posed,
    )


def test_fig1_iteration_cycles(benchmark):
    program = fig1_program()
    report = benchmark(solve_si_iterative, program)
    assert not report.converged
    assert len(report.cycle) == 2
    record(benchmark, converged=report.converged, cycle_length=len(report.cycle))


def test_fig1_sp_hat_nonmonotone(benchmark):
    program = fig1_program()
    counterexample = benchmark(check_monotonic, sp_hat(program), program.space)
    assert counterexample is not None
    p, q = counterexample.witnesses
    record(
        benchmark,
        monotone=False,
        witness_p_states=p.count(),
        witness_q_states=q.count(),
    )
