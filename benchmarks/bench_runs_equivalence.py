"""E12 — §3: predicate-transformer knowledge ≡ [HM90] view-based knowledge.

On reachable states, eq. (13)'s K_i agrees with "true at every
indistinguishable reachable point".  Regenerated over the paper's programs
and a random batch; the history-view comparison quantifies what the
paper's explicit-history-variable remark buys.
"""

import random

from repro.core import solve_si
from repro.figures import fig2_program, fig2_weak_init
from repro.core import resolve_at
from repro.predicates import Predicate
from repro.runs import agreement_with_transformer, history_strictly_stronger
from repro.statespace import BoolDomain, space_of
from repro.unity import Program, Statement, const, var

from .conftest import once, record


def test_agreement_on_fig2(benchmark):
    program = fig2_program()
    si = solve_si(program.with_init(fig2_weak_init(program))).strongest()
    resolved = resolve_at(program, si)

    def run():
        checks = 0
        for process in resolved.processes:
            for mask in range(1 << resolved.space.size):
                p = Predicate(resolved.space, mask)
                assert agreement_with_transformer(resolved, process, p)
                checks += 1
        return checks

    checks = once(benchmark, run)
    record(benchmark, facts_checked=checks, disagreements=0)


def test_agreement_on_random_programs(benchmark):
    rng = random.Random(23)
    space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())

    def build(k):
        statements = []
        for s in range(2):
            statements.append(
                Statement(
                    name=f"s{s}",
                    targets=(rng.choice(space.names),),
                    exprs=(const(rng.random() < 0.5),),
                    guard=var(rng.choice(space.names)),
                )
            )
        return Program(
            space,
            Predicate(space, rng.getrandbits(space.size) | 1),
            statements,
            processes={"P": ("a",), "Q": ("b", "c")},
            name=f"rnd{k}",
        )

    def run():
        checks = 0
        for k in range(15):
            program = build(k)
            for _ in range(8):
                p = Predicate(space, rng.getrandbits(space.size))
                for process in ("P", "Q"):
                    assert agreement_with_transformer(program, process, p)
                    checks += 1
        return checks

    checks = once(benchmark, run)
    record(benchmark, facts_checked=checks, disagreements=0)


def test_history_views_strictly_stronger_somewhere(benchmark):
    """[HM90]'s richer views: history can create knowledge the state view
    lacks — exactly what adding history variables recovers."""
    space = space_of(a=BoolDomain(), b=BoolDomain())
    program = Program(
        space,
        Predicate.from_callable(space, lambda s: not s["a"] and not s["b"]),
        [
            Statement(name="set_a", targets=("a",), exprs=(const(True),)),
            Statement(
                name="clear_a",
                targets=("a", "b"),
                exprs=(const(False), const(True)),
                guard=var("a"),
            ),
        ],
        processes={"Watcher": ("a",)},
        name="two-phase",
    )
    b = Predicate.from_callable(space, lambda s: s["b"])
    gains = once(benchmark, history_strictly_stronger, program, "Watcher", b, 2)
    assert gains
    record(benchmark, points_with_history_gain=len(gains))
