"""E16 — the coordinated-attack phenomenon inside the framework.

The paper's knowledge operator extends to common knowledge (its §3 remark,
via [HM90]); [HM90]'s central impossibility then becomes measurable here:
over the sequence transmission protocols, every finite level of the
``E^n``-hierarchy for the fact ``x_0 = a`` is attained and the levels
strictly shrink, but common knowledge is attained in **zero** reachable
states — on every channel model, including the reliable one (asynchronous
delivery suffices for the impossibility).
"""

from repro.seqtrans import (
    LOSSY,
    RELIABLE,
    SeqTransParams,
    bounded_loss,
    build_standard_protocol,
)
from repro.seqtrans.common_knowledge import knowledge_hierarchy

from .conftest import once, record

PARAMS = SeqTransParams(length=1)


def test_hierarchy_per_channel(benchmark):
    def run():
        out = {}
        for name, channel in (
            ("reliable", RELIABLE),
            ("bounded_loss", bounded_loss(1)),
            ("lossy", LOSSY),
        ):
            program = build_standard_protocol(PARAMS, channel)
            out[name] = knowledge_hierarchy(program, PARAMS)
        return out

    hierarchies = once(benchmark, run)
    for name, hierarchy in hierarchies.items():
        assert hierarchy.individual[1] > 0, name  # the Receiver does learn x_0
        assert hierarchy.e_levels[0] > 0, name  # E is attained
        assert hierarchy.strictly_descending, name
        assert not hierarchy.common_knowledge_attained, name  # C never is
    record(
        benchmark,
        **{
            name: f"K_R={h.individual[1]} E-levels={list(h.e_levels)} C={h.common}"
            for name, h in hierarchies.items()
        },
    )


def test_common_knowledge_only_of_invariants(benchmark):
    """What *is* common knowledge: invariant facts (eq. 23's flavour).

    ``w ⊑ x`` holds in every reachable state, so by necessitation it is
    common knowledge everywhere on SI — the contrast that makes the
    x_0-impossibility meaningful.
    """
    from repro.core import KnowledgeOperator
    from repro.seqtrans import safety_predicate
    from repro.transformers import strongest_invariant

    program = build_standard_protocol(PARAMS, bounded_loss(1))

    def run():
        si = strongest_invariant(program)
        operator = KnowledgeOperator.of_program(program, si)
        safety = safety_predicate(program.space)
        common = operator.common_knowledge(["Sender", "Receiver"], safety)
        return (common & si).count(), si.count()

    attained, si_states = once(benchmark, run)
    assert attained == si_states
    record(benchmark, common_of_invariant=attained, si_states=si_states)
