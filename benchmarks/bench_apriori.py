"""E10 — §6.4: a priori knowledge breaks instantiation but saves messages.

Paper claims regenerated:

1. with ``x_0`` known a priori the standard protocol is still correct but
   **no longer an instantiation** of the knowledge-based protocol;
2. a KBP-consistent protocol "would have the receiver deliver the value
   immediately ... thus saving one message" — quantified by the randomized
   executor (for the bounded L = 1 instance the saving is the entire
   send/ack exchange).
"""

from repro.seqtrans import (
    RELIABLE,
    SeqTransParams,
    check_instantiation,
    compare_with_apriori,
)

from .conftest import once, record


def test_apriori_breaks_instantiation(benchmark):
    params = SeqTransParams(length=1, apriori={0: "a"})
    report = once(benchmark, check_instantiation, params, RELIABLE)
    assert report.sufficient  # still correct
    assert not report.instantiates  # no longer the KBP
    mismatched = [t.label for t in report.terms if not t.exact]
    record(
        benchmark,
        sufficient=report.sufficient,
        instantiates=report.instantiates,
        mismatched_terms=", ".join(mismatched),
    )


def test_apriori_message_savings(benchmark):
    params = SeqTransParams(length=1, apriori={0: "a"})
    comparison = once(
        benchmark, compare_with_apriori, params, RELIABLE, 20, 1991
    )
    assert comparison.standard_correct and comparison.kbp_correct
    assert comparison.savings > 0
    assert comparison.kbp_messages == 0.0
    record(
        benchmark,
        standard_messages=round(comparison.standard_messages, 2),
        kbp_messages=round(comparison.kbp_messages, 2),
        savings=round(comparison.savings, 2),
    )


def test_no_apriori_no_savings(benchmark):
    """Control: without a priori information the two protocols coincide."""
    params = SeqTransParams(length=1)
    comparison = once(
        benchmark, compare_with_apriori, params, RELIABLE, 20, 1991
    )
    assert abs(comparison.savings) < 1e-9
    record(
        benchmark,
        standard_messages=round(comparison.standard_messages, 2),
        kbp_messages=round(comparison.kbp_messages, 2),
    )
