"""E5 — eqs. (23)–(24): the knowledge/invariant correspondence.

(23): invariant p ≡ invariant K_i p.
(24): for local q: invariant (q ⇒ p) ≡ invariant (q ⇒ K_i p) — the result
"apparently not as obvious as it seems" (an expert reviewer claimed it was
incorrect); here it is checked exhaustively over all p and all local q.
"""

import random

from repro.core import (
    KnowledgeOperator,
    check_invariant_equivalence,
    check_local_invariant_equivalence,
)
from repro.predicates import Predicate
from repro.statespace import BoolDomain, space_of

from .conftest import once, record


def _operators(count: int, seed: int = 7):
    space = space_of(a=BoolDomain(), b=BoolDomain())
    rng = random.Random(seed)
    for _ in range(count):
        si = Predicate(space, rng.getrandbits(space.size) | 1)
        yield KnowledgeOperator(space, si, {"P": ["a"], "Q": ["b"]})


def test_eq23_invariant_equivalence(benchmark):
    def run():
        for operator in _operators(25):
            for process in ("P", "Q"):
                violation = check_invariant_equivalence(operator, process)
                if violation is not None:
                    return violation
        return None

    violation = once(benchmark, run)
    assert violation is None
    record(benchmark, eq23_violations=0, operators=25)


def test_eq24_local_invariant_equivalence(benchmark):
    def run():
        for operator in _operators(25, seed=13):
            for process in ("P", "Q"):
                violation = check_local_invariant_equivalence(operator, process)
                if violation is not None:
                    return violation
        return None

    violation = once(benchmark, run)
    assert violation is None
    record(benchmark, eq24_violations=0, operators=25)
