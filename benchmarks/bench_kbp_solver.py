"""E7 — eq. (25): SI-solver ablation on random knowledge-based protocols.

Exhaustive search (complete) vs Φ-iteration (sound, incomplete): how often
random KBPs have 0 / 1 / many solutions, and how often the cheap iteration
finds one.  This quantifies section 4's qualitative message: ill-posedness
is not an exotic corner case.

The parallel-speedup bench measures the sharded, batched solver
(repro.core.parallel) against the serial sweep on a 24-state random KBP,
asserts result identity (report and certificate digests), and appends a
trajectory entry to ``BENCH_kbp_solver.json``.  Set
``KBP_SOLVER_BENCH_QUICK=1`` to shrink the candidate count for CI smoke
runs (the speedup floor is only asserted on the full-size run).
"""

import json
import os
import random
import time
from pathlib import Path

from repro.core import solve_si, solve_si_iterative, solve_si_parallel
from repro.predicates import Predicate
from repro.statespace import BoolDomain, IntRangeDomain, space_of
from repro.unity import Program, Statement, Unary, Var, const, knows, lnot, var

from .conftest import once, record

_TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_kbp_solver.json"
_RESULTS: dict = {}

_QUICK = os.environ.get("KBP_SOLVER_BENCH_QUICK") == "1"
#: Free state-bits of the speedup sweep: 2^14 candidates full, 2^10 quick.
_SPEEDUP_FREE_BITS = 10 if _QUICK else 14
#: Free state-bits of the certified-digest sweep (evidence is per-candidate
#: Python either way, so this one stays small).
_CERT_FREE_BITS = 6 if _QUICK else 8
_SPEEDUP_FLOOR = 3.0


def _random_kbp(rng: random.Random) -> Program:
    """A random 2–3 statement KBP over three Booleans with K-guards."""
    space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
    names = list(space.names)
    views = {"P": ["a"], "Q": ["b", "c"]}
    statements = []
    for k in range(rng.randint(2, 3)):
        target = rng.choice(names)
        rhs = const(rng.random() < 0.5)
        process = rng.choice(list(views))
        fact_var = rng.choice(names)
        fact = Var(fact_var) if rng.random() < 0.5 else Unary("not", Var(fact_var))
        guard = knows(process, fact)
        if rng.random() < 0.3:
            guard = lnot(guard)
        statements.append(
            Statement(name=f"s{k}", targets=(target,), exprs=(rhs,), guard=guard)
        )
    init = Predicate(space, 1 << rng.randrange(space.size))
    return Program(space, init, statements, processes=views, name="random-kbp")


def test_solver_ablation(benchmark):
    rng = random.Random(1991)
    programs = [_random_kbp(rng) for _ in range(40)]

    def run():
        outcome = {"none": 0, "unique": 0, "multiple": 0, "iterative_found": 0,
                   "iterative_cycled": 0, "iterative_sound": True}
        for program in programs:
            report = solve_si(program)
            if not report.well_posed:
                outcome["none"] += 1
            elif report.unique:
                outcome["unique"] += 1
            else:
                outcome["multiple"] += 1
            iterative = solve_si_iterative(program)
            if iterative.converged:
                outcome["iterative_found"] += 1
                # Soundness: anything the iteration returns is a real solution.
                if not any(iterative.solution == s for s in report.solutions):
                    outcome["iterative_sound"] = False
            else:
                outcome["iterative_cycled"] += 1
        return outcome

    outcome = once(benchmark, run)
    assert outcome["iterative_sound"]
    assert outcome["none"] > 0, "ill-posed KBPs should occur in a random batch"
    assert outcome["iterative_found"] + outcome["iterative_cycled"] == 40
    record(benchmark, **{k: v for k, v in outcome.items()})


def test_exhaustive_solver_cost_vs_free_states(benchmark):
    """Candidate count doubles per non-initial state — the completeness price."""
    from repro.figures import fig1_program

    program = fig1_program()

    def run():
        return solve_si(program).candidates_checked

    checked = benchmark(run)
    assert checked == 2 ** (program.space.size - program.init.count())
    record(benchmark, candidates=checked)


def _speedup_kbp(rng: random.Random, free_bits: int) -> Program:
    """A 24-state KBP (3 Booleans × a 0..2 counter) with K-bearing guards.

    ``init`` covers all but ``free_bits`` randomly chosen states, so the
    exhaustive sweep examines exactly ``2^free_bits`` candidates; every
    guard shape stays inside the batched solver's postfix vocabulary.
    """
    space = space_of(
        a=BoolDomain(), b=BoolDomain(), c=BoolDomain(), n=IntRangeDomain(0, 2)
    )
    assert space.size == 24
    views = {"P": ["a", "n"], "Q": ["b", "c"]}
    statements = [
        Statement(
            name="s0",
            targets=("a",),
            exprs=(const(True),),
            guard=knows("P", Var("b")),
        ),
        Statement(
            name="s1",
            targets=("b",),
            exprs=(const(False),),
            guard=lnot(knows("Q", Unary("not", Var("c")))),
        ),
        Statement(
            name="s2",
            targets=("n",),
            exprs=(var("n") + const(1),),
            guard=knows("Q", Var("a")) & (var("n") < const(2)),
        ),
    ]
    init_mask = space.full_mask
    for position in rng.sample(range(space.size), free_bits):
        init_mask &= ~(1 << position)
    return Program(
        space,
        Predicate(space, init_mask),
        statements,
        processes=views,
        name="kbp-24",
    )


def test_parallel_solver_speedup(benchmark):
    """The sharded/batched sweep vs serial: identical report, ≥3× faster."""
    rng = random.Random(2024)
    program = _speedup_kbp(rng, _SPEEDUP_FREE_BITS)

    def run():
        start = time.perf_counter()
        serial = solve_si(program, parallel="never")
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        parallel = solve_si_parallel(program, workers=8)
        parallel_s = time.perf_counter() - start
        identical = parallel.candidates_checked == serial.candidates_checked and tuple(
            p.mask for p in parallel.solutions
        ) == tuple(p.mask for p in serial.solutions)
        return serial, serial_s, parallel_s, identical

    serial, serial_s, parallel_s, identical = once(benchmark, run)
    assert identical
    speedup = serial_s / parallel_s
    if not _QUICK:
        # Quick CI boxes sweep too few candidates to amortize pool startup;
        # the floor is a full-size claim.
        assert speedup >= _SPEEDUP_FLOOR, (
            f"parallel solver only {speedup:.1f}x over serial "
            f"(floor {_SPEEDUP_FLOOR}x on 2^{_SPEEDUP_FREE_BITS} candidates)"
        )
    _RESULTS["solve_si_identical"] = identical
    _RESULTS["parallel_speedup"] = round(speedup, 1)
    _RESULTS["free_bits"] = _SPEEDUP_FREE_BITS
    _RESULTS["workers"] = 8
    _RESULTS["quick"] = _QUICK
    record(
        benchmark,
        candidates=serial.candidates_checked,
        serial_s=round(serial_s, 3),
        parallel_s=round(parallel_s, 3),
        parallel_speedup=round(speedup, 1),
        solve_si_identical=identical,
    )


def test_zero_copy_dispatch_scaling(benchmark):
    """Speedup vs worker count, plus what dispatch actually ships.

    The zero-copy arena claim in numbers: bytes-per-shard stays at the
    descriptor size (two pickled ints) at every worker count, worker peak
    RSS is sampled through the transport, and the before/after columns —
    arena vs ``arena="never"`` — land in the trajectory file.
    """
    rng = random.Random(2025)
    program = _speedup_kbp(rng, _SPEEDUP_FREE_BITS)
    worker_counts = [1, 2] if _QUICK else [1, 2, 4, 8]

    def run():
        timings = {}
        reports = {}
        for count in worker_counts:
            start = time.perf_counter()
            reports[count] = solve_si_parallel(
                program, workers=count, collect_stats=True
            )
            timings[count] = time.perf_counter() - start
        no_arena = solve_si_parallel(
            program, workers=2, arena="never", collect_stats=True
        )
        return timings, reports, no_arena

    timings, reports, no_arena = once(benchmark, run)
    reference = reports[worker_counts[0]]
    for count in worker_counts[1:]:
        assert reports[count].candidates_checked == reference.candidates_checked
        assert tuple(p.mask for p in reports[count].solutions) == tuple(
            p.mask for p in reference.solutions
        )
    assert tuple(p.mask for p in no_arena.solutions) == tuple(
        p.mask for p in reference.solutions
    )

    multi = reports[max(worker_counts)].dispatch.as_dict()
    assert multi["arena_segments"] == 1
    assert multi["bytes_per_shard"] < 100, multi
    scaling = {
        str(count): round(timings[count], 3) for count in worker_counts
    }
    speedups = {
        str(count): round(timings[worker_counts[0]] / timings[count], 2)
        for count in worker_counts
    }
    _RESULTS["scaling_seconds"] = scaling
    _RESULTS["scaling_speedup"] = speedups
    _RESULTS["dispatch_bytes_per_shard"] = multi["bytes_per_shard"]
    _RESULTS["peak_worker_rss_kb"] = multi["worker_peak_rss_kb"]
    _RESULTS["arena_bytes"] = multi["arena_bytes"]
    _RESULTS["init_bytes_arena"] = multi["init_bytes"]
    _RESULTS["init_bytes_no_arena"] = no_arena.dispatch.as_dict()["init_bytes"]
    record(
        benchmark,
        scaling_seconds=scaling,
        scaling_speedup=speedups,
        dispatch_bytes_per_shard=multi["bytes_per_shard"],
        peak_worker_rss_kb=multi["worker_peak_rss_kb"],
        arena_bytes=multi["arena_bytes"],
    )


def _spawn_worker_daemons(count, scratch: Path):
    """Launch ``count`` localhost worker daemons; returns (procs, addrs)."""
    import subprocess
    import sys

    src = str(Path(__file__).resolve().parent.parent / "src")
    procs, addrs = [], []
    for i in range(count):
        port_file = scratch / f"bench-worker-{i}.port"
        if port_file.exists():
            port_file.unlink()
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.worker", "--port-file", str(port_file)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        procs.append(proc)
        deadline = time.monotonic() + 30.0
        while not port_file.exists():
            if time.monotonic() > deadline:
                raise RuntimeError("worker daemon never announced a port")
            time.sleep(0.02)
        addrs.append(f"127.0.0.1:{port_file.read_text().strip()}")
    return procs, addrs


def test_socket_transport_scaling(benchmark, tmp_path):
    """The TCP transport vs the local pool on the same sweep (DESIGN.md §15).

    Two localhost worker daemons against a two-worker local pool: identical
    reports, and the wire accounting (frames, bytes, per-shard payload)
    lands in the trajectory so transport overhead is tracked over time.
    """
    rng = random.Random(2025)
    program = _speedup_kbp(rng, _SPEEDUP_FREE_BITS)

    def run():
        start = time.perf_counter()
        local = solve_si_parallel(program, workers=2, collect_stats=True)
        local_s = time.perf_counter() - start
        procs, addrs = _spawn_worker_daemons(2, tmp_path)
        try:
            start = time.perf_counter()
            remote = solve_si_parallel(program, remote_workers=addrs)
            socket_s = time.perf_counter() - start
        finally:
            for proc in procs:
                proc.kill()
        return local, local_s, remote, socket_s

    local, local_s, remote, socket_s = once(benchmark, run)
    assert tuple(p.mask for p in remote.solutions) == tuple(
        p.mask for p in local.solutions
    )
    assert remote.candidates_checked == local.candidates_checked
    stats = remote.dispatch.as_dict()
    assert stats["transports"] == ["socket"]
    _RESULTS["socket_seconds"] = round(socket_s, 3)
    _RESULTS["socket_vs_local_pool"] = round(socket_s / local_s, 2)
    _RESULTS["socket_frames_sent"] = stats["frames_sent"]
    _RESULTS["socket_net_bytes_sent"] = stats["net_bytes_sent"]
    _RESULTS["socket_net_bytes_received"] = stats["net_bytes_received"]
    record(
        benchmark,
        local_pool_s=round(local_s, 3),
        socket_s=round(socket_s, 3),
        socket_frames_sent=stats["frames_sent"],
        socket_net_bytes_received=stats["net_bytes_received"],
        socket_identical=True,
    )


def test_parallel_certificates_match_serial(benchmark):
    """Sharded certified sweeps must reproduce the serial digests exactly."""
    from repro.certificates.canonical import canonical_dumps, payload_digest

    rng = random.Random(1991)
    program = _speedup_kbp(rng, _CERT_FREE_BITS)

    def run():
        serial = solve_si(program, emit_certificate=True, parallel="never")
        parallel = solve_si_parallel(program, workers=2, emit_certificate=True)
        serial_payload = serial.certificate.to_payload()
        parallel_payload = parallel.certificate.to_payload()
        return (
            canonical_dumps(serial_payload) == canonical_dumps(parallel_payload),
            payload_digest(serial_payload),
        )

    digests_match, digest = once(benchmark, run)
    assert digests_match
    _RESULTS["certificate_digests_match"] = digests_match
    record(benchmark, certificate_digests_match=digests_match, digest=digest[:16])
    _write_trajectory()


def _write_trajectory() -> None:
    entry = {
        "bench": "kbp_solver",
        "timestamp": round(time.time()),
        "space": 24,
        **_RESULTS,
    }
    try:
        existing = json.loads(_TRAJECTORY.read_text())
        if not isinstance(existing, list):
            existing = [existing]
    except (FileNotFoundError, json.JSONDecodeError):
        existing = []
    existing.append(entry)
    _TRAJECTORY.write_text(json.dumps(existing, indent=2) + "\n")
