"""E7 — eq. (25): SI-solver ablation on random knowledge-based protocols.

Exhaustive search (complete) vs Φ-iteration (sound, incomplete): how often
random KBPs have 0 / 1 / many solutions, and how often the cheap iteration
finds one.  This quantifies section 4's qualitative message: ill-posedness
is not an exotic corner case.
"""

import random

from repro.core import solve_si, solve_si_iterative
from repro.predicates import Predicate
from repro.statespace import BoolDomain, space_of
from repro.unity import Program, Statement, Unary, Var, const, knows, lnot, var

from .conftest import once, record


def _random_kbp(rng: random.Random) -> Program:
    """A random 2–3 statement KBP over three Booleans with K-guards."""
    space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
    names = list(space.names)
    views = {"P": ["a"], "Q": ["b", "c"]}
    statements = []
    for k in range(rng.randint(2, 3)):
        target = rng.choice(names)
        rhs = const(rng.random() < 0.5)
        process = rng.choice(list(views))
        fact_var = rng.choice(names)
        fact = Var(fact_var) if rng.random() < 0.5 else Unary("not", Var(fact_var))
        guard = knows(process, fact)
        if rng.random() < 0.3:
            guard = lnot(guard)
        statements.append(
            Statement(name=f"s{k}", targets=(target,), exprs=(rhs,), guard=guard)
        )
    init = Predicate(space, 1 << rng.randrange(space.size))
    return Program(space, init, statements, processes=views, name="random-kbp")


def test_solver_ablation(benchmark):
    rng = random.Random(1991)
    programs = [_random_kbp(rng) for _ in range(40)]

    def run():
        outcome = {"none": 0, "unique": 0, "multiple": 0, "iterative_found": 0,
                   "iterative_cycled": 0, "iterative_sound": True}
        for program in programs:
            report = solve_si(program)
            if not report.well_posed:
                outcome["none"] += 1
            elif report.unique:
                outcome["unique"] += 1
            else:
                outcome["multiple"] += 1
            iterative = solve_si_iterative(program)
            if iterative.converged:
                outcome["iterative_found"] += 1
                # Soundness: anything the iteration returns is a real solution.
                if not any(iterative.solution == s for s in report.solutions):
                    outcome["iterative_sound"] = False
            else:
                outcome["iterative_cycled"] += 1
        return outcome

    outcome = once(benchmark, run)
    assert outcome["iterative_sound"]
    assert outcome["none"] > 0, "ill-posed KBPs should occur in a random batch"
    assert outcome["iterative_found"] + outcome["iterative_cycled"] == 40
    record(benchmark, **{k: v for k, v in outcome.items()})


def test_exhaustive_solver_cost_vs_free_states(benchmark):
    """Candidate count doubles per non-initial state — the completeness price."""
    from repro.figures import fig1_program

    program = fig1_program()

    def run():
        return solve_si(program).candidates_checked

    checked = benchmark(run)
    assert checked == 2 ** (program.space.size - program.init.count())
    record(benchmark, candidates=checked)
