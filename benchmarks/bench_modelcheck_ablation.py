"""E15 — ablation: the two independent leads-to algorithms.

DESIGN.md §5 calls out the decision to implement fair progress checking
twice — the ``wlt`` least-fixpoint (mirrors how UNITY proofs compose) and
the SCC fair-cycle refuter (a graph algorithm).  This bench measures both
on the same obligations and re-asserts their agreement; the refuter's
reachable-set locality is why it is the default inside ``check_spec``.
"""

import random

from repro.predicates import Predicate
from repro.proofs import holds_leads_to, refute_leads_to, wlt
from repro.seqtrans import SeqTransParams, bounded_loss, build_standard_protocol
from repro.seqtrans.spec import w_length_eq, w_length_gt
from repro.transformers import strongest_invariant

from .conftest import once, record

PARAMS = SeqTransParams(length=1)


def _instance():
    program = build_standard_protocol(PARAMS, bounded_loss(1))
    si = strongest_invariant(program)
    space = program.space
    return program, si, w_length_eq(space, 0), w_length_gt(space, 0)


def test_wlt_fixpoint(benchmark):
    program, si, p, q = _instance()
    verdict = benchmark(lambda: p.entails(wlt(program, q, si)))
    assert verdict
    record(benchmark, algorithm="wlt least fixpoint", verdict=verdict)


def test_scc_refuter(benchmark):
    program, si, p, q = _instance()
    refutation = benchmark(refute_leads_to, program, p, q, si)
    assert refutation is None
    record(benchmark, algorithm="SCC fair-cycle refuter", verdict=True)


def test_agreement_under_randomized_obligations(benchmark):
    """Both algorithms agree on 60 random (p, q) pairs over the protocol SI."""
    program, si, _, _ = _instance()
    space = program.space
    rng = random.Random(2024)
    reachable = list(si.indices())

    def run():
        checked = 0
        for _ in range(60):
            p = Predicate.from_indices(
                space, rng.sample(reachable, k=rng.randint(1, 8))
            )
            q = Predicate.from_indices(
                space, rng.sample(reachable, k=rng.randint(1, 8))
            )
            by_wlt = p.entails(wlt(program, q, si))
            by_refuter = refute_leads_to(program, p, q, si) is None
            assert by_wlt == by_refuter
            checked += 1
        return checked

    checked = once(benchmark, run)
    assert checked == 60
    record(benchmark, obligations=checked, disagreements=0)
