"""Runs, points, reachability — the operational side."""

import pytest
from hypothesis import given, settings

from repro.runs import (
    Point,
    Run,
    bfs_reachable,
    diameter,
    generate_runs,
    reachable_points,
    states_in_runs,
)
from repro.transformers import strongest_invariant

from ..conftest import make_counter_program, random_programs


@pytest.fixture
def program():
    return make_counter_program()


class TestRunStructure:
    def test_run_shape_invariant(self):
        with pytest.raises(ValueError):
            Run(states=(0, 1), statements=())

    def test_point_bounds(self):
        run = Run(states=(0, 1, 2), statements=("a", "b"))
        assert run.point(0).state == 0
        assert run.point(2).state == 2
        with pytest.raises(ValueError):
            run.point(3)

    def test_history(self):
        run = Run(states=(0, 1, 2), statements=("a", "b"))
        assert run.point(1).history() == (0, 1)


class TestGeneration:
    def test_counts(self, program):
        """|runs| = |init| × |statements|^depth."""
        n_init = program.init.count()
        n_statements = len(program.statements)
        for depth in (0, 1, 2, 3):
            runs = generate_runs(program, depth)
            assert len(runs) == n_init * n_statements ** depth

    def test_runs_follow_transitions(self, program):
        for run in generate_runs(program, 3):
            for t, name in enumerate(run.statements):
                stmt = program.statement(name)
                array = program.successor_array(stmt)
                assert run.states[t + 1] == array[run.states[t]]

    def test_cap_enforced(self, program):
        with pytest.raises(ValueError):
            generate_runs(program, 20, max_runs=100)

    def test_reachable_points_count(self, program):
        points = reachable_points(program, 2)
        runs = generate_runs(program, 2)
        assert len(points) == len(runs) * 3


class TestReachability:
    def test_bfs_equals_si(self, program):
        assert bfs_reachable(program) == strongest_invariant(program)

    @given(random_programs())
    @settings(max_examples=30, deadline=None)
    def test_bfs_equals_si_random(self, program):
        assert bfs_reachable(program) == strongest_invariant(program)

    def test_runs_cover_reachable_at_diameter(self, program):
        d = diameter(program)
        covered = states_in_runs(generate_runs(program, d))
        assert covered == set(bfs_reachable(program).indices())

    def test_shallow_runs_cover_less(self, program):
        d = diameter(program)
        assert d > 1
        shallow = states_in_runs(generate_runs(program, 1))
        full = set(bfs_reachable(program).indices())
        assert shallow < full
