"""Halpern–Moses view-based knowledge vs the predicate transformer (§3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KnowledgeOperator
from repro.predicates import Predicate, var_true
from repro.runs import (
    agreement_with_transformer,
    bfs_reachable,
    diameter,
    history_strictly_stronger,
    hm_knows,
    hm_knows_with_history,
    view_of,
)
from repro.statespace import BoolDomain, space_of
from repro.unity import Program, assign, const, var

from ..conftest import make_counter_program, program_with_predicates


@pytest.fixture
def program():
    return make_counter_program()


class TestStateViewKnowledge:
    def test_view_is_projection(self, program):
        state = program.space.index_of({"go": True, "n": 2})
        assert view_of(program, "Clock", state) == (2,)
        assert view_of(program, "Ctl", state) == (True,)

    def test_hm_semantics_by_hand(self, program):
        """Clock (sees n) knows go exactly when its n-value forces go on SI."""
        go = var_true(program.space, "go")
        knowledge = hm_knows(program, "Clock", go)
        reach = bfs_reachable(program)
        for i in reach.indices():
            n_value = program.space.value_at(i, "n")
            same_view = [
                j for j in reach.indices() if program.space.value_at(j, "n") == n_value
            ]
            expected = all(go.holds_at(j) for j in same_view)
            assert knowledge.holds_at(i) == expected

    def test_agreement_theorem_counter(self, program):
        for fn in (
            lambda s: s["go"],
            lambda s: s["n"] >= 1,
            lambda s: s["go"] and s["n"] == 0,
        ):
            p = Predicate.from_callable(program.space, fn)
            assert agreement_with_transformer(program, "Clock", p)
            assert agreement_with_transformer(program, "Ctl", p)

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_agreement_theorem_random(self, data):
        """The §3 equivalence, on random programs and random facts."""
        program, p = data.draw(program_with_predicates(1))
        for process in program.processes:
            assert agreement_with_transformer(program, process, p)

    def test_hm_false_off_reachable(self, program):
        p = Predicate.true(program.space)
        knowledge = hm_knows(program, "Clock", p)
        unreachable = ~bfs_reachable(program)
        assert (knowledge & unreachable).is_false()


class TestHistoryViews:
    def _two_phase_program(self):
        """b records "a was ever set"; an observer of nothing benefits from
        history: seeing the *sequence* of views distinguishes time."""
        space = space_of(a=BoolDomain(), b=BoolDomain())
        return Program(
            space,
            Predicate.from_callable(space, lambda s: not s["a"] and not s["b"]),
            [
                assign("set_a", {"a": const(True)}),
                assign("clear_a", {"a": const(False), "b": const(True)}, guard=var("a")),
            ],
            processes={"Watcher": ("a",)},
            name="two-phase",
        )

    def test_history_at_least_as_strong(self, program):
        p = var_true(program.space, "go")
        depth = min(diameter(program), 3)
        state_k = hm_knows(program, "Clock", p)
        by_history = hm_knows_with_history(program, "Clock", p, depth)
        for point, knows in by_history.items():
            if state_k.holds_at(point.state):
                assert knows

    def test_history_strictly_stronger_example(self):
        """Watcher sees a; after observing a=T then a=F it knows b, though
        the state view a=F alone cannot distinguish b."""
        program = self._two_phase_program()
        b = var_true(program.space, "b")
        gains = history_strictly_stronger(program, "Watcher", b, depth=2)
        assert gains  # at least one point where history beats the state view

    def test_no_gain_when_state_encodes_history(self, program):
        """In the counter, Ctl's view (go) already determines everything it
        could learn about go-facts."""
        go = var_true(program.space, "go")
        gains = history_strictly_stronger(program, "Ctl", go, depth=2)
        assert gains == []
