"""Knowledge-acquisition profiles ("how processes learn", [CM86])."""

import pytest

from repro.core import KnowledgeOperator
from repro.predicates import Predicate, disjunction, var_true
from repro.runs import knowledge_onset_by_depth, time_to_knowledge
from repro.seqtrans import SeqTransParams, bounded_loss, build_standard_protocol
from repro.seqtrans.standard import fact_x_k
from repro.transformers import strongest_invariant

from ..conftest import make_counter_program


@pytest.fixture(scope="module")
def protocol():
    params = SeqTransParams(length=1)
    program = build_standard_protocol(params, bounded_loss(1))
    si = strongest_invariant(program)
    operator = KnowledgeOperator.of_program(program, si)
    return program, operator


class TestOnsetProfile:
    def test_counts_cover_reachable_set(self, protocol):
        program, operator = protocol
        fact = fact_x_k(program.space, 0, "a")
        profile = knowledge_onset_by_depth(program, "Receiver", fact, operator)
        si = strongest_invariant(program)
        assert sum(profile.new_states) == si.count()

    def test_receiver_does_not_know_initially(self, protocol):
        """No a priori information: depth 0 carries no knowledge of x_0."""
        program, operator = protocol
        fact = fact_x_k(program.space, 0, "a")
        profile = knowledge_onset_by_depth(program, "Receiver", fact, operator)
        assert profile.knowing[0] == 0
        assert profile.earliest_onset() is not None
        assert profile.earliest_onset() >= 2  # transmit, then receive

    def test_apriori_shifts_onset_to_zero(self):
        """With x_0 known a priori the Receiver knows from the start."""
        params = SeqTransParams(length=1, apriori={0: "a"})
        program = build_standard_protocol(params, bounded_loss(1))
        fact = fact_x_k(program.space, 0, "a")
        profile = knowledge_onset_by_depth(program, "Receiver", fact)
        assert profile.earliest_onset() == 0
        assert profile.knowing[0] == profile.new_states[0]

    def test_fractions_well_formed(self, protocol):
        program, operator = protocol
        fact = fact_x_k(program.space, 0, "a")
        profile = knowledge_onset_by_depth(program, "Receiver", fact, operator)
        for fraction in profile.fraction_by_depth():
            assert 0.0 <= fraction <= 1.0

    def test_counter_program_onset(self):
        """Ctl (sees go) knows go as soon as it is set — depth 1."""
        program = make_counter_program()
        go = var_true(program.space, "go")
        profile = knowledge_onset_by_depth(program, "Ctl", go)
        assert profile.knowing[0] == 0
        assert profile.earliest_onset() == 1


class TestTimeToKnowledge:
    def test_knowing_the_value_always_attained(self, protocol):
        """K_R x_0 (some value) is eventually attained in every fair run."""
        program, operator = protocol
        space = program.space
        knows_value = disjunction(
            space,
            [
                operator.knows("Receiver", fact_x_k(space, 0, alpha))
                for alpha in ("a", "b")
            ],
        )
        samples = []
        from repro.sim import Executor

        for seed in range(10):
            result = Executor(program, seed=seed).run(knows_value, max_steps=20_000)
            samples.append(result.reached)
        assert all(samples)

    def test_never_attained_reported(self):
        program = make_counter_program()
        impossible = Predicate.false(program.space)
        result = time_to_knowledge(
            program, "Ctl", impossible, runs=3, seed=0, max_steps=50
        )
        assert result.attained == 0
        assert result.quantile(0.5) == -1


class TestEpistemicDepth:
    def test_first_vs_second_order(self, protocol):
        """Cleaner version: time to (∃α K_R(x₀=α)) < time to K_S(∃α K_R…)."""
        program, operator = protocol
        space = program.space
        knows_value = disjunction(
            space,
            [
                operator.knows("Receiver", fact_x_k(space, 0, alpha))
                for alpha in ("a", "b")
            ],
        )
        from repro.sim import Executor

        k_s = operator.knows("Sender", knows_value)
        firsts, seconds = [], []
        for seed in range(8):
            run1 = Executor(program, seed=seed).run(knows_value, max_steps=20_000)
            run2 = Executor(program, seed=seed).run(k_s, max_steps=20_000)
            assert run1.reached and run2.reached
            firsts.append(run1.steps)
            seconds.append(run2.steps)
        assert sum(seconds) > sum(firsts)
