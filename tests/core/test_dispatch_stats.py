"""DispatchStats accounting: derivation, round-trips, merging."""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transport import DispatchStats


@st.composite
def stats(draw):
    counts = st.integers(min_value=0, max_value=1 << 40)
    addresses = st.text(
        alphabet="abc123.:", min_size=1, max_size=12
    )
    return DispatchStats(
        start_method=draw(st.sampled_from(["", "fork", "spawn"])),
        shards_dispatched=draw(counts),
        bytes_dispatched=draw(counts),
        init_bytes=draw(counts),
        arena_bytes=draw(counts),
        arena_segments=draw(st.integers(0, 64)),
        worker_peak_rss_kb=draw(counts),
        transports=draw(
            st.lists(
                st.sampled_from(["local", "socket"]), max_size=2, unique=True
            )
        ),
        frames_sent=draw(counts),
        frames_received=draw(counts),
        net_bytes_sent=draw(counts),
        net_bytes_received=draw(counts),
        plan_payload_bytes=draw(counts),
        worker_retries=draw(
            st.dictionaries(addresses, st.integers(1, 100), max_size=4)
        ),
        workers_lost=draw(st.integers(0, 16)),
        duplicate_results=draw(st.integers(0, 16)),
    )


class TestBytesPerShard:
    def test_zero_shards_divides_to_zero(self):
        assert DispatchStats(bytes_dispatched=100).bytes_per_shard == 0.0

    def test_mean_is_exact(self):
        s = DispatchStats(shards_dispatched=3, bytes_dispatched=10)
        assert s.bytes_per_shard == 10 / 3

    def test_serialized_copy_is_rounded_but_not_trusted(self):
        s = DispatchStats(shards_dispatched=3, bytes_dispatched=10)
        doc = s.as_dict()
        assert doc["bytes_per_shard"] == round(10 / 3, 2)
        # Even a forged derived value cannot survive the round-trip.
        doc["bytes_per_shard"] = 999999.0
        back = DispatchStats.from_dict(doc)
        assert back.bytes_per_shard == 10 / 3


class TestRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(s=stats())
    def test_as_dict_survives_json(self, s):
        doc = json.loads(json.dumps(s.as_dict()))
        back = DispatchStats.from_dict(doc)
        assert back == s
        assert back.bytes_per_shard == s.bytes_per_shard

    def test_from_dict_ignores_unknown_keys(self):
        doc = DispatchStats(shards_dispatched=1).as_dict()
        doc["future_field"] = "whatever"
        assert DispatchStats.from_dict(doc).shards_dispatched == 1


class TestMerge:
    @settings(max_examples=100, deadline=None)
    @given(a=stats(), b=stats())
    def test_counts_add_and_peaks_max(self, a, b):
        merged = a.merge(b)
        assert merged.shards_dispatched == (
            a.shards_dispatched + b.shards_dispatched
        )
        assert merged.bytes_dispatched == a.bytes_dispatched + b.bytes_dispatched
        assert merged.frames_sent == a.frames_sent + b.frames_sent
        assert merged.net_bytes_received == (
            a.net_bytes_received + b.net_bytes_received
        )
        assert merged.workers_lost == a.workers_lost + b.workers_lost
        assert merged.arena_bytes == max(a.arena_bytes, b.arena_bytes)
        assert merged.worker_peak_rss_kb == max(
            a.worker_peak_rss_kb, b.worker_peak_rss_kb
        )

    @settings(max_examples=100, deadline=None)
    @given(a=stats(), b=stats())
    def test_bytes_per_shard_is_the_true_overall_mean(self, a, b):
        merged = a.merge(b)
        total_shards = a.shards_dispatched + b.shards_dispatched
        if total_shards:
            expected = (a.bytes_dispatched + b.bytes_dispatched) / total_shards
        else:
            expected = 0.0
        assert merged.bytes_per_shard == expected

    @settings(max_examples=100, deadline=None)
    @given(a=stats(), b=stats())
    def test_retries_sum_per_address_and_transports_union(self, a, b):
        merged = a.merge(b)
        for address in set(a.worker_retries) | set(b.worker_retries):
            assert merged.worker_retries[address] == a.worker_retries.get(
                address, 0
            ) + b.worker_retries.get(address, 0)
        assert set(merged.transports) == set(a.transports) | set(b.transports)

    @settings(max_examples=50, deadline=None)
    @given(a=stats(), b=stats())
    def test_merge_then_round_trip(self, a, b):
        merged = a.merge(b)
        back = DispatchStats.from_dict(json.loads(json.dumps(merged.as_dict())))
        assert back == merged

    def test_degraded_solve_shape(self):
        socket_leg = DispatchStats(
            transports=["socket"], shards_dispatched=2, bytes_dispatched=40,
            frames_sent=6, workers_lost=2,
        )
        local_leg = DispatchStats(
            start_method="fork", transports=["local"],
            shards_dispatched=6, bytes_dispatched=60,
        )
        merged = socket_leg.merge(local_leg)
        assert merged.transports == ["socket", "local"]
        assert merged.start_method == "fork"
        assert merged.bytes_per_shard == 100 / 8
