"""S5 and the knowledge laws — paper eqs. (14)–(24), checked exhaustively."""

import pytest
from hypothesis import given, settings

from repro.core import (
    KnowledgeOperator,
    check_antimonotonicity_in_si,
    check_distribution,
    check_invariant_equivalence,
    check_local_invariant_equivalence,
    check_monotonicity_in_p,
    check_necessitation,
    check_negative_introspection,
    check_positive_introspection,
    check_truth_axiom,
    check_universal_conjunctivity,
    find_disjunctivity_counterexample,
    verify_all,
)
from repro.predicates import Predicate, var_true
from repro.statespace import BoolDomain, space_of

from ..conftest import random_programs


def small_operator(si_mask: int = None):
    space = space_of(a=BoolDomain(), b=BoolDomain())
    si = (
        Predicate(space, si_mask)
        if si_mask is not None
        else Predicate.from_callable(space, lambda s: s["a"] or not s["b"])
    )
    return KnowledgeOperator(space, si, {"P": ["a"], "Q": ["b"]})


class TestS5AxiomsExhaustive:
    """Each axiom over *every* predicate of a fixed small operator."""

    def test_eq14_truth(self):
        assert check_truth_axiom(small_operator(), "P") is None

    def test_eq15_distribution(self):
        assert check_distribution(small_operator(), "P") is None

    def test_eq16_positive_introspection(self):
        assert check_positive_introspection(small_operator(), "P") is None

    def test_eq17_negative_introspection(self):
        assert check_negative_introspection(small_operator(), "P") is None

    def test_eq18_necessitation(self):
        assert check_necessitation(small_operator(), "P") is None

    def test_eq19_monotone(self):
        assert check_monotonicity_in_p(small_operator(), "P") is None

    def test_eq21_universally_conjunctive(self):
        assert check_universal_conjunctivity(small_operator(), "P") is None

    def test_eq23_invariant_equivalence(self):
        assert check_invariant_equivalence(small_operator(), "P") is None

    def test_eq24_local_invariant_equivalence(self):
        """The theorem the expert reviewer doubted — exhaustively true."""
        assert check_local_invariant_equivalence(small_operator(), "P") is None


class TestS5OnRandomPrograms:
    @given(random_programs(max_vars=2, max_statements=2))
    @settings(max_examples=15, deadline=None)
    def test_all_laws_on_program_operators(self, program):
        """Eqs. (14)–(19), (21), (23), (24) for the SI of random programs."""
        operator = KnowledgeOperator.of_program(program)
        process = next(iter(program.processes))
        violations = verify_all(operator, process)
        assert violations == []

    @given(random_programs(max_vars=3, max_statements=3))
    @settings(max_examples=10, deadline=None)
    def test_truth_and_introspection_sampled(self, program):
        """Sampled checks scale to the 8-state spaces."""
        operator = KnowledgeOperator.of_program(program)
        process = next(iter(program.processes))
        assert check_truth_axiom(operator, process, samples=40) is None
        assert check_positive_introspection(operator, process, samples=40) is None
        assert check_negative_introspection(operator, process, samples=40) is None


class TestEq20AntiMonotonicity:
    def test_stronger_si_more_knowledge(self):
        space = space_of(a=BoolDomain(), b=BoolDomain())
        weak_si = Predicate.true(space)
        strong_si = var_true(space, "a") | var_true(space, "b")
        weak = KnowledgeOperator(space, weak_si, {"P": ["a"]})
        strong = KnowledgeOperator(space, strong_si, {"P": ["a"]})
        assert check_antimonotonicity_in_si(weak, strong, "P") is None

    def test_concrete_gain_of_knowledge(self):
        """With SI = (a ∨ b), seeing a = False teaches P that b holds."""
        space = space_of(a=BoolDomain(), b=BoolDomain())
        op_all = KnowledgeOperator(space, Predicate.true(space), {"P": ["a"]})
        op_si = KnowledgeOperator(
            space, var_true(space, "a") | var_true(space, "b"), {"P": ["a"]}
        )
        b = var_true(space, "b")
        state = space.index_of({"a": False, "b": True})
        assert not op_all.knows("P", b).holds_at(state)
        assert op_si.knows("P", b).holds_at(state)

    def test_misordered_arguments_rejected(self):
        space = space_of(a=BoolDomain(), b=BoolDomain())
        weak = KnowledgeOperator(space, Predicate.true(space), {"P": ["a"]})
        strong = KnowledgeOperator(space, var_true(space, "a"), {"P": ["a"]})
        with pytest.raises(ValueError):
            check_antimonotonicity_in_si(strong, weak, "P")


class TestEq22NonDisjunctivity:
    def test_counterexample_exists_generically(self):
        """K_i is not disjunctive: a witness pair exists for a non-trivial view."""
        witness = find_disjunctivity_counterexample(small_operator(), "P")
        assert witness is not None
        p, q = witness
        op = small_operator()
        assert not (op.knows("P", p) | op.knows("P", q)) == op.knows("P", p | q)

    def test_full_view_is_disjunctive(self):
        """A process that sees everything has K_i p ≡ p on SI — disjunctive."""
        space = space_of(a=BoolDomain(), b=BoolDomain())
        op = KnowledgeOperator(space, Predicate.true(space), {"All": ["a", "b"]})
        assert find_disjunctivity_counterexample(op, "All") is None
