"""Knowledge-based protocols and the SI equation (25): Figures 1 and 2."""

import pytest

from repro.core import (
    compare_inits,
    is_solution,
    phi,
    resolution_at,
    resolve_at,
    solve_si,
    solve_si_iterative,
    sp_hat,
)
from repro.figures import (
    fig1_program,
    fig2_program,
    fig2_strong_init,
    fig2_weak_init,
)
from repro.predicates import Predicate, var_true
from repro.proofs import check_leads_to_both
from repro.transformers import check_monotonic, strongest_invariant

from ..conftest import make_counter_program


class TestFigure1NoSolution:
    def test_exhaustive_search_finds_nothing(self):
        """The paper's claim: no SI solves eq. (25) for Figure 1."""
        report = solve_si(fig1_program())
        assert not report.well_posed
        assert report.solutions == ()
        # All 2^(4-1) = 8 candidates above init were examined.
        assert report.candidates_checked == 8

    def test_iterative_solver_cycles(self):
        report = solve_si_iterative(fig1_program())
        assert not report.converged
        assert len(report.cycle) == 2

    def test_sp_hat_not_monotone(self):
        """The technical culprit the paper identifies (section 4)."""
        program = fig1_program()
        counterexample = check_monotonic(sp_hat(program), program.space)
        assert counterexample is not None
        p, q = counterexample.witnesses
        transform = sp_hat(program)
        assert p.entails(q)
        assert not transform(p).entails(transform(q))

    def test_strongest_raises_without_solutions(self):
        report = solve_si(fig1_program())
        with pytest.raises(ValueError):
            report.strongest()

    def test_strongest_raises_on_incomparable_solutions(self):
        """No ⊑-minimum ⇒ no "strongest" — silently returning solutions[0]
        would misreport the protocol's SI.  naive_mutex is the real case:
        two solutions, neither entailing the other."""
        from repro.puzzles.mutex import naive_mutex

        report = solve_si(naive_mutex())
        assert len(report.solutions) == 2
        with pytest.raises(ValueError, match="incomparable") as exc_info:
            report.strongest()
        # The error names the offending pair.
        for solution in report.solutions:
            assert repr(solution) in str(exc_info.value)

    def test_phi_cycle_is_genuine(self):
        """Φ alternates between two candidates, neither a fixpoint."""
        program = fig1_program()
        x0 = program.init
        x1 = phi(program, x0)
        x2 = phi(program, x1)
        x3 = phi(program, x2)
        assert x1 != x2
        assert x3 == x1


class TestFigure2NonMonotonicity:
    def test_si_values_match_paper(self):
        """init = ¬y gives SI = ¬y; init = ¬y ∧ x gives SI = x."""
        program = fig2_program()
        space = program.space
        weak = fig2_weak_init(program)
        strong = fig2_strong_init(program)
        report = compare_inits(program, weak, strong)
        assert report.si_weak == ~var_true(space, "y")
        assert report.si_strong == var_true(space, "x")
        assert not report.monotonic

    def test_solutions_unique_for_both_inits(self):
        program = fig2_program()
        for init in (fig2_weak_init(program), fig2_strong_init(program)):
            report = solve_si(program.with_init(init))
            assert report.unique

    def test_safety_property_lost(self):
        """invariant ¬y holds under the weak init, fails under the strong one."""
        program = fig2_program()
        space = program.space
        not_y = ~var_true(space, "y")
        si_weak = solve_si(program.with_init(fig2_weak_init(program))).strongest()
        si_strong = solve_si(program.with_init(fig2_strong_init(program))).strongest()
        assert si_weak.entails(not_y)
        assert not si_strong.entails(not_y)

    def test_liveness_property_lost(self):
        """true ↦ z holds under the weak init, fails under the strong one."""
        program = fig2_program()
        space = program.space
        z = var_true(space, "z")
        for init, expected in (
            (fig2_weak_init(program), True),
            (fig2_strong_init(program), False),
        ):
            variant = program.with_init(init)
            si = solve_si(variant).strongest()
            resolved = resolve_at(variant, si)
            verdict = check_leads_to_both(resolved, Predicate.true(space), z, si)
            assert verdict == expected

    def test_compare_inits_requires_ordered_inits(self):
        program = fig2_program()
        with pytest.raises(ValueError):
            compare_inits(program, fig2_strong_init(program), fig2_weak_init(program))


class TestSolverMechanics:
    def test_standard_program_degenerates(self):
        """For a standard program, eq. (25) = eq. (1): the unique SI."""
        program = make_counter_program()
        report = solve_si(program)
        assert report.unique
        assert report.solutions[0] == strongest_invariant(program)

    def test_is_solution_agrees_with_search(self):
        program = fig2_program().with_init(fig2_weak_init(fig2_program()))
        report = solve_si(program)
        space = program.space
        found = set(p.mask for p in report.solutions)
        for mask in range(1 << space.size):
            candidate = Predicate(space, mask)
            if is_solution(program, candidate):
                assert mask in found

    def test_resolution_at_covers_all_terms(self):
        program = fig1_program()
        resolution = resolution_at(program, Predicate.true(program.space))
        assert set(resolution) == set(program.knowledge_terms())

    def test_resolve_at_produces_standard_program(self):
        program = fig1_program()
        resolved = resolve_at(program, program.init)
        assert not resolved.is_knowledge_based()
        assert resolved.space == program.space

    def test_iterative_on_standard_program_converges(self):
        program = make_counter_program()
        report = solve_si_iterative(program)
        assert report.converged
        assert report.solution == strongest_invariant(program)

    def test_size_guard(self):
        from repro.seqtrans import SeqTransParams, RELIABLE, build_kbp_protocol

        big = build_kbp_protocol(SeqTransParams(length=1), RELIABLE)
        with pytest.raises(ValueError):
            solve_si(big)
