"""Shared-memory arena dispatch: identity, lifecycle, and leak hygiene.

The arena promises three things and this file holds it to all of them:
worker evaluation through zero-copy views is *bit-identical* to the
compiled :class:`PhiPlan`; shard dispatch ships O(shard-descriptor)
bytes — two small ints — regardless of state-space size; and no named
segment survives a solve, whatever killed it (clean exit, pool respawn,
``SimulatedKill`` mid-journal, serial degradation).
"""

from __future__ import annotations

import multiprocessing as mp
import os

import pytest

from repro.core import compile_phi_plan, solve_si, solve_si_parallel
from repro.predicates import Predicate, using_backend
from repro.predicates.arena import (
    SEGMENT_PREFIX,
    SolveArena,
    list_segments,
    sweep_stale_segments,
)
from repro.statespace import BoolDomain, space_of
from repro.unity import Const, Program, Statement, Unary, Var, knows, lnot


def make_kbp() -> Program:
    space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
    statements = [
        Statement(
            name="s0",
            targets=("a",),
            exprs=(Const(True),),
            guard=knows("P", Var("b")),
        ),
        Statement(
            name="s1",
            targets=("b",),
            exprs=(Const(False),),
            guard=lnot(knows("Q", Var("c"))),
        ),
        Statement(
            name="s2",
            targets=("c",),
            exprs=(Const(True),),
            guard=knows("Q", Unary("not", Var("a"))) & Var("a"),
        ),
    ]
    return Program(
        space,
        Predicate(space, 1),
        statements,
        processes={"P": ("a", "b"), "Q": ("c",)},
        name="arena-kbp",
    )


@pytest.fixture(scope="module")
def kbp() -> Program:
    return make_kbp()


@pytest.fixture(scope="module")
def serial_report(kbp):
    return solve_si(kbp, parallel="never")


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test starts and must end with a clean segment namespace."""
    before = list_segments()
    yield
    leaked = [name for name in list_segments() if name not in before]
    assert not leaked, f"leaked arena segments: {leaked}"


def assert_same_report(reference, report):
    assert [p.mask for p in report.solutions] == [
        p.mask for p in reference.solutions
    ]
    assert report.candidates_checked == reference.candidates_checked


# ----------------------------------------------------------------------
# attach identity
# ----------------------------------------------------------------------


class TestAttachIdentity:
    @pytest.mark.parametrize("backend_name", ["int", "numpy"])
    def test_arena_plan_matches_compiled_plan(self, kbp, backend_name):
        from repro.predicates.backends import batch_backend_for

        plan = compile_phi_plan(kbp)
        assert plan is not None
        arena = SolveArena.build(plan, "f" * 64)
        try:
            attached = arena.plan(kbp.space)
            candidates = sorted(
                {kbp.init.mask | mask for mask in range(1 << kbp.space.size)}
            )
            with using_backend(backend_name):
                backend = batch_backend_for(kbp.space.size, len(candidates))
                assert backend.batch_phi(attached, candidates) == (
                    backend.batch_phi(plan, candidates)
                )
            attached.close()
        finally:
            arena.close(unlink=True)

    def test_spec_is_a_compact_descriptor(self, kbp):
        import pickle

        plan = compile_phi_plan(kbp)
        arena = SolveArena.build(plan, "e" * 64)
        try:
            spec_bytes = len(pickle.dumps(arena.spec))
            plan_bytes = len(pickle.dumps(plan))
            # The point of the arena: what crosses the pickle boundary is
            # the name-and-offsets descriptor, not the bulk arrays.
            assert spec_bytes < plan_bytes
        finally:
            arena.close(unlink=True)


# ----------------------------------------------------------------------
# end-to-end dispatch
# ----------------------------------------------------------------------


class TestDispatch:
    def test_arena_solve_matches_serial(self, kbp, serial_report):
        report = solve_si_parallel(kbp, workers=2, collect_stats=True)
        assert_same_report(serial_report, report)
        stats = report.dispatch.as_dict()
        assert stats["arena_segments"] == 1
        assert stats["arena_bytes"] > 0

    def test_arena_never_matches_serial(self, kbp, serial_report):
        report = solve_si_parallel(
            kbp, workers=2, arena="never", collect_stats=True
        )
        assert_same_report(serial_report, report)
        assert report.dispatch.as_dict()["arena_segments"] == 0

    def test_arena_env_knob(self, kbp, serial_report, monkeypatch):
        from repro.core.parallel import ARENA_ENV_VAR

        monkeypatch.setenv(ARENA_ENV_VAR, "never")
        report = solve_si_parallel(kbp, workers=2, collect_stats=True)
        assert_same_report(serial_report, report)
        assert report.dispatch.as_dict()["arena_segments"] == 0
        monkeypatch.setenv(ARENA_ENV_VAR, "sometimes")
        with pytest.raises(ValueError):
            solve_si_parallel(kbp, workers=2)

    def test_shard_payload_is_descriptor_sized(self, kbp):
        report = solve_si_parallel(kbp, workers=2, collect_stats=True)
        stats = report.dispatch
        assert stats.shards_dispatched >= 2
        # (shard_index, fixed_mask) pickles to a few dozen bytes; the
        # successor arrays and masks never ride along.
        assert stats.bytes_per_shard < 100
        assert stats.init_bytes > 0  # program + arena spec, once per pool

    def test_certificates_identical_with_arenas(self, kbp):
        from repro.certificates.canonical import canonical_dumps

        serial = solve_si(kbp, parallel="never", emit_certificate=True)
        parallel = solve_si_parallel(kbp, workers=2, emit_certificate=True)
        assert canonical_dumps(serial.certificate.to_payload()) == (
            canonical_dumps(parallel.certificate.to_payload())
        )

    def test_in_process_solve_has_no_dispatch_stats(self, kbp, serial_report):
        report = solve_si_parallel(kbp, workers=1)
        assert_same_report(serial_report, report)
        assert report.dispatch is None


# ----------------------------------------------------------------------
# spawn start method
# ----------------------------------------------------------------------


@pytest.mark.skipif(
    "spawn" not in mp.get_all_start_methods(), reason="no spawn here"
)
class TestSpawn:
    def test_spawn_pool_matches_serial(self, kbp, serial_report):
        report = solve_si_parallel(
            kbp, workers=2, start_method="spawn", collect_stats=True
        )
        assert_same_report(serial_report, report)
        assert report.dispatch.start_method == "spawn"
        assert report.dispatch.as_dict()["arena_segments"] == 1

    def test_spawn_replays_backend_selection(self, kbp, serial_report):
        with using_backend("numpy"):
            report = solve_si_parallel(kbp, workers=2, start_method="spawn")
        assert_same_report(serial_report, report)

    def test_spawn_env_knob(self, kbp, serial_report, monkeypatch):
        from repro.core.parallel import START_METHOD_ENV_VAR

        monkeypatch.setenv(START_METHOD_ENV_VAR, "spawn")
        report = solve_si_parallel(kbp, workers=2, collect_stats=True)
        assert_same_report(serial_report, report)
        assert report.dispatch.start_method == "spawn"

    def test_unknown_start_method_is_rejected(self, kbp):
        with pytest.raises(ValueError):
            solve_si_parallel(kbp, workers=2, start_method="teleport")


# ----------------------------------------------------------------------
# lifecycle under faults
# ----------------------------------------------------------------------


class TestFaultLifecycle:
    def test_pool_respawn_reuses_one_arena(self, kbp, serial_report):
        from repro.robustness import FaultPlan

        report = solve_si_parallel(
            kbp,
            workers=2,
            fault_plan=FaultPlan.parse("crash@1"),
            collect_stats=True,
        )
        assert_same_report(serial_report, report)
        assert not report.fault_log.clean
        # One segment served both the original pool and its respawn.
        assert report.dispatch.as_dict()["arena_segments"] == 1

    def test_kill_and_resume_leaves_no_segment(self, kbp, serial_report, tmp_path):
        from repro.robustness import FaultPlan, SimulatedKill

        journal = tmp_path / "solve.journal"
        with pytest.raises(SimulatedKill):
            solve_si_parallel(
                kbp,
                workers=2,
                checkpoint=journal,
                fault_plan=FaultPlan.parse("kill@2"),
            )
        # The kill unwound through the solve's finally: nothing leaked
        # even though the journal says the sweep is incomplete.
        assert not [n for n in list_segments() if str(os.getpid()) in n]
        resumed = solve_si_parallel(kbp, workers=2, checkpoint=journal)
        assert_same_report(serial_report, resumed)

    def test_serial_degradation_leaves_no_segment(self, kbp, serial_report):
        from repro.robustness import FaultPlan

        report = solve_si_parallel(
            kbp,
            workers=2,
            fault_plan=FaultPlan.parse("crash@0:times=50"),
            collect_stats=True,
        )
        assert_same_report(serial_report, report)


# ----------------------------------------------------------------------
# stale-segment sweep
# ----------------------------------------------------------------------


class TestStaleSweep:
    def test_dead_creator_segment_is_reaped(self):
        from multiprocessing import shared_memory

        # A PID that cannot be alive: fork one, let it exit, use its PID.
        child = mp.get_context("fork").Process(target=lambda: None)
        child.start()
        dead_pid = child.pid
        child.join()
        name = f"{SEGMENT_PREFIX}{'d' * 12}-{dead_pid}-1"
        segment = shared_memory.SharedMemory(name=name, create=True, size=64)
        segment.close()
        try:
            assert name in list_segments()
            removed = sweep_stale_segments()
            assert name in removed
            assert name not in list_segments()
        finally:
            if name in list_segments():  # sweep failed; don't leak
                shared_memory.SharedMemory(name=name).unlink()

    def test_live_creator_segment_is_spared(self):
        from multiprocessing import shared_memory

        name = f"{SEGMENT_PREFIX}{'e' * 12}-{os.getpid()}-999"
        segment = shared_memory.SharedMemory(name=name, create=True, size=64)
        try:
            assert name not in sweep_stale_segments()
            assert name in list_segments()
        finally:
            segment.close()
            segment.unlink()

    def test_sweep_racing_a_live_creator_never_reaps_it(self):
        """Concurrent sweeps against a live creator in another process.

        The sweep's safety claim is per-PID: as long as the creating
        process is alive, its segments survive *any* number of sweeps from
        anywhere — and the moment it dies they are fair game.  Run many
        sweeps in parallel threads while the creator holds its segment,
        then let the creator exit (without unlinking, modelling a hard
        kill) and check one more sweep reaps what the racing ones spared.
        """
        import threading
        from multiprocessing import resource_tracker, shared_memory

        ctx = mp.get_context("fork")
        ready = ctx.Event()
        release = ctx.Event()

        def creator(ready, release):
            name = f"{SEGMENT_PREFIX}{'f' * 12}-{os.getpid()}-1"
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=64
            )
            # Dying without unlinking is the point; keep the tracker from
            # "helpfully" cleaning up at exit so the parent can observe
            # the leaked segment.
            resource_tracker.unregister(segment._name, "shared_memory")
            ready.set()
            release.wait(timeout=30)
            segment.close()
            os._exit(0)

        child = ctx.Process(target=creator, args=(ready, release))
        child.start()
        assert ready.wait(timeout=30)
        name = f"{SEGMENT_PREFIX}{'f' * 12}-{child.pid}-1"
        try:
            assert name in list_segments()
            reaped: list = []
            threads = [
                threading.Thread(
                    target=lambda: reaped.extend(sweep_stale_segments())
                )
                for _ in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert name not in reaped
            assert name in list_segments()
        finally:
            release.set()
            child.join(timeout=30)
        # The creator is dead now; the same sweep must reap its segment.
        assert name in sweep_stale_segments()
        assert name not in list_segments()
