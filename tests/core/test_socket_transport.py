"""SocketTransport against live worker daemons: attach modes, degradation.

Every test here runs real ``python -m repro.worker`` subprocesses (the
``spawn_worker`` factory in the top-level conftest) — the protocol is
exercised over actual TCP sockets, not mocks, so framing, heartbeats and
attach handshakes are tested as deployed.
"""

from __future__ import annotations

import pickle
import queue
import socket
import threading
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.core import solve_si, solve_si_parallel
from repro.core.netproto import (
    WORKER_PROTOCOL,
    recv_frame,
    send_frame,
)
from repro.core.transport import (
    DEFAULT_HEARTBEAT,
    DEFAULT_HEARTBEAT_TIMEOUT,
    ShardLeaseRevoked,
    SocketTransport,
    _SocketTask,
    _WorkerLink,
    heartbeat_interval,
    heartbeat_timeout,
    parse_address,
)
from repro.predicates import Predicate
from repro.statespace import BoolDomain, space_of
from repro.unity import Const, Program, Statement, Unary, Var, knows, lnot


def make_kbp() -> Program:
    space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
    statements = [
        Statement(
            name="s0",
            targets=("a",),
            exprs=(Const(True),),
            guard=knows("P", Var("b")),
        ),
        Statement(
            name="s1",
            targets=("b",),
            exprs=(Const(False),),
            guard=lnot(knows("Q", Var("c"))),
        ),
        Statement(
            name="s2",
            targets=("c",),
            exprs=(Const(True),),
            guard=knows("Q", Unary("not", Var("a"))) & Var("a"),
        ),
    ]
    return Program(
        space,
        Predicate(space, 1),
        statements,
        processes={"P": ("a", "b"), "Q": ("c",)},
        name="socket-kbp",
    )


@pytest.fixture(scope="module")
def kbp() -> Program:
    return make_kbp()


@pytest.fixture(scope="module")
def serial_report(kbp):
    return solve_si(kbp, parallel="never")


def assert_same_report(reference, report):
    assert [p.mask for p in report.solutions] == [
        p.mask for p in reference.solutions
    ]
    assert report.candidates_checked == reference.candidates_checked


def dead_address() -> str:
    """A localhost address that refuses connections right now."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.1:9000") == ("10.0.0.1", 9000)

    def test_whitespace_stripped(self):
        assert parse_address(" localhost:1234 ") == ("localhost", 1234)

    @pytest.mark.parametrize("bad", ["", "hostonly", ":123", "host:", "host:x"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


class TestHeartbeatKnobs:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOCKET_HEARTBEAT", raising=False)
        monkeypatch.delenv("REPRO_SOCKET_HEARTBEAT_TIMEOUT", raising=False)
        assert heartbeat_interval() == DEFAULT_HEARTBEAT
        assert heartbeat_timeout() == DEFAULT_HEARTBEAT_TIMEOUT

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOCKET_HEARTBEAT", "0.25")
        monkeypatch.setenv("REPRO_SOCKET_HEARTBEAT_TIMEOUT", "3.5")
        assert heartbeat_interval() == 0.25
        assert heartbeat_timeout() == 3.5


class TestSocketSolve:
    def test_matches_serial_with_two_daemons(
        self, kbp, serial_report, spawn_worker
    ):
        addrs = [spawn_worker(f"w{i}")[1] for i in range(2)]
        report = solve_si_parallel(kbp, remote_workers=addrs)
        assert_same_report(serial_report, report)
        stats = report.dispatch
        assert stats.transports == ["socket"]
        assert stats.frames_sent > 0 and stats.frames_received > 0
        assert stats.net_bytes_sent > 0 and stats.net_bytes_received > 0
        assert report.fault_log.clean

    def test_solve_si_routes_remote_workers(self, kbp, serial_report, spawn_worker):
        _, addr = spawn_worker()
        report = solve_si(kbp, remote_workers=[addr])
        assert_same_report(serial_report, report)
        assert report.dispatch.transports == ["socket"]

    def test_env_var_names_the_fleet(
        self, kbp, serial_report, spawn_worker, monkeypatch
    ):
        _, addr = spawn_worker()
        monkeypatch.setenv("REPRO_SOLVER_REMOTE_WORKERS", f" {addr} ,")
        report = solve_si_parallel(kbp)
        assert_same_report(serial_report, report)
        assert report.dispatch.transports == ["socket"]

    def test_arena_mode_ships_no_plan_payload(self, kbp, spawn_worker):
        """Localhost daemons map the arena by name: zero payload bytes."""
        _, addr = spawn_worker()
        report = solve_si_parallel(kbp, remote_workers=[addr])
        assert report.dispatch.plan_payload_bytes == 0
        assert report.dispatch.arena_bytes > 0

    def test_payload_fallback_when_arena_unreachable(
        self, kbp, serial_report, spawn_worker, monkeypatch
    ):
        """No arena segment to map — the full Φ plan travels by value."""
        monkeypatch.setenv("REPRO_SOLVER_ARENA", "never")
        _, addr = spawn_worker()
        report = solve_si_parallel(kbp, remote_workers=[addr])
        assert_same_report(serial_report, report)
        assert report.dispatch.plan_payload_bytes > 0

    def test_certificates_byte_identical_over_sockets(self, kbp, spawn_worker):
        from repro.certificates.canonical import canonical_dumps

        reference = solve_si(kbp, parallel="never", emit_certificate=True)
        addrs = [spawn_worker(f"w{i}")[1] for i in range(2)]
        report = solve_si_parallel(
            kbp, remote_workers=addrs, emit_certificate=True
        )
        assert canonical_dumps(report.certificate.to_payload()) == (
            canonical_dumps(reference.certificate.to_payload())
        )


class TestDegradation:
    def test_unreachable_worker_is_skipped(
        self, kbp, serial_report, spawn_worker
    ):
        _, live = spawn_worker()
        report = solve_si_parallel(kbp, remote_workers=[dead_address(), live])
        assert_same_report(serial_report, report)
        assert report.dispatch.transports == ["socket"]
        assert report.fault_log.count("worker-unreachable") == 1

    def test_all_unreachable_degrades_to_local_pool(self, kbp, serial_report):
        report = solve_si_parallel(
            kbp, remote_workers=[dead_address(), dead_address()]
        )
        assert_same_report(serial_report, report)
        assert report.dispatch.transports == ["local"]
        assert report.fault_log.count("degraded-to-local") == 1

    def test_bogus_address_rejected_before_any_connect(self, kbp):
        with pytest.raises(ValueError):
            solve_si_parallel(kbp, remote_workers=["no-port-here"])


class TestAuth:
    """The mutual HMAC handshake gating every pickled payload."""

    def test_keyed_solve_matches_serial(
        self, kbp, serial_report, spawn_worker, monkeypatch
    ):
        _, a = spawn_worker("wa", key="sesame")
        _, b = spawn_worker("wb", key="sesame", key_file=True)
        monkeypatch.setenv("REPRO_WORKER_KEY", "sesame")
        report = solve_si_parallel(kbp, remote_workers=[a, b])
        assert_same_report(serial_report, report)
        assert report.dispatch.transports == ["socket"]
        assert report.fault_log.clean

    def test_wrong_key_degrades_to_local(
        self, kbp, serial_report, spawn_worker, monkeypatch
    ):
        _, addr = spawn_worker(key="sesame")
        monkeypatch.setenv("REPRO_WORKER_KEY", "open says me")
        report = solve_si_parallel(kbp, remote_workers=[addr])
        assert_same_report(serial_report, report)
        assert report.dispatch.transports == ["local"]
        assert report.fault_log.count("degraded-to-local") == 1

    def test_keyless_coordinator_refused_by_keyed_worker(
        self, kbp, serial_report, spawn_worker, monkeypatch
    ):
        _, addr = spawn_worker(key="sesame")
        monkeypatch.delenv("REPRO_WORKER_KEY", raising=False)
        report = solve_si_parallel(kbp, remote_workers=[addr])
        assert_same_report(serial_report, report)
        assert report.dispatch.transports == ["local"]

    def test_keyed_coordinator_refuses_keyless_worker(
        self, kbp, serial_report, spawn_worker, monkeypatch
    ):
        """No silent downgrade: holding a key means requiring one."""
        _, addr = spawn_worker()  # keyless daemon
        monkeypatch.setenv("REPRO_WORKER_KEY", "sesame")
        report = solve_si_parallel(kbp, remote_workers=[addr])
        assert_same_report(serial_report, report)
        assert report.dispatch.transports == ["local"]

    def test_nonloopback_bind_refused_without_key(self, monkeypatch):
        from repro.worker import serve

        monkeypatch.delenv("REPRO_WORKER_KEY", raising=False)
        with pytest.raises(SystemExit, match="authentication key"):
            serve(host="0.0.0.0")


class TestSessionHygiene:
    """Raw-socket probes of the daemon's failure answers."""

    def _connect(self, address):
        sock = socket.create_connection(parse_address(address), timeout=10.0)
        sock.settimeout(10.0)
        return sock, sock.makefile("rb"), sock.makefile("wb")

    def test_hello_announces_protocol_and_auth_mode(self, spawn_worker):
        _, addr = spawn_worker()
        sock, rfile, _wfile = self._connect(addr)
        try:
            header, _body, _n = recv_frame(rfile)
            assert header["type"] == "hello"
            assert header["protocol"] == WORKER_PROTOCOL
            assert header["auth"] == "none"
        finally:
            sock.close()

    def test_malformed_attach_payload_earns_error_frame(self, spawn_worker):
        """A payload of the wrong shape fails fast with an 'error' frame,
        not a silently dead session the coordinator times out on."""
        _, addr = spawn_worker()
        sock, rfile, wfile = self._connect(addr)
        try:
            recv_frame(rfile)  # hello (keyless: no handshake to answer)
            send_frame(
                wfile,
                "attach",
                {"program": "sha256:feedbeef", "protocol": WORKER_PROTOCOL},
                pickle.dumps(["not", "a", "dict"]),
            )
            header, _body, _n = recv_frame(rfile)
            assert header["type"] == "error"
            assert "bad attach payload" in header["message"]
        finally:
            sock.close()


class TestTransportInternals:
    """White-box checks of the lease/queue bookkeeping invariants."""

    def _bare_transport(self) -> SocketTransport:
        transport = SocketTransport.__new__(SocketTransport)
        transport._lock = threading.Lock()
        transport._stopping = threading.Event()
        transport._broken = False
        transport._attempts = {}
        transport._seen = {}
        transport._queue = queue.Queue()
        transport.links = []
        transport.stats = None
        transport.log = None
        return transport

    def test_lose_link_completes_inflight_future_during_shutdown(self):
        """shutdown() mid-shard must not leave the in-flight future
        pending forever — only queued tasks pass the cancelling drain."""
        transport = self._bare_transport()
        transport._stopping.set()
        task = _SocketTask(0, 0b11, 1, Future())
        transport._lose_link(_WorkerLink(0, "127.0.0.1:1"), task, "teardown")
        assert task.future.done()

    def test_broken_transport_fails_submissions_without_queueing(self):
        transport = self._bare_transport()
        transport._broken = True
        future = transport.submit(None, 0, 0b1)
        with pytest.raises(BrokenProcessPool):
            future.result(timeout=1)
        assert transport._queue.empty()

    def test_losing_last_link_fails_the_backlog(self):
        """The drain after _broken is set must reach tasks already
        queued, so nothing sits in a queue no thread serves."""
        transport = self._bare_transport()
        link = _WorkerLink(0, "127.0.0.1:1")
        link.alive = True
        transport.links = [link]
        queued = transport.submit(None, 1, 0b01)
        inflight = _SocketTask(0, 0b10, 1, Future())
        transport._lose_link(link, inflight, "connection reset")
        assert transport._broken
        with pytest.raises(BrokenProcessPool):
            inflight.future.result(timeout=1)
        with pytest.raises(BrokenProcessPool):
            queued.result(timeout=1)

    def test_revoked_lease_names_the_shard(self):
        transport = self._bare_transport()
        lost = _WorkerLink(0, "127.0.0.1:1")
        survivor = _WorkerLink(1, "127.0.0.1:2")
        survivor.alive = True
        transport.links = [lost, survivor]
        task = _SocketTask(3, 0b101, 2, Future())
        transport._lose_link(lost, task, "no heartbeat")
        with pytest.raises(ShardLeaseRevoked) as excinfo:
            task.future.result(timeout=1)
        assert excinfo.value.shard_index == 3
        assert excinfo.value.fixed_mask == 0b101


class TestTryAttach:
    def test_missing_segment_answers_none(self, kbp):
        from dataclasses import replace

        from repro.core import compile_phi_plan
        from repro.predicates.arena import SolveArena

        plan = compile_phi_plan(kbp)
        arena = SolveArena.build(plan, "test-digest")
        try:
            spec = arena.spec
            assert spec.try_attach(kbp.space) is not None
            ghost = replace(spec, segment="repro-arena-feedbeef-1-404")
            assert ghost.try_attach(kbp.space) is None
        finally:
            arena.close()
