"""The shared frame protocol: round-trips, tears, limits, corruption."""

from __future__ import annotations

import io
import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.netproto import (
    FrameError,
    MAX_FRAME_BYTES,
    MAX_LINE_BYTES,
    encode_frame,
    recv_frame,
    send_frame,
)


def roundtrip(frame_type, meta=None, body=b""):
    wire = io.BytesIO()
    sent = send_frame(wire, frame_type, meta, body)
    wire.seek(0)
    header, got_body, read = recv_frame(wire)
    assert sent == read == len(wire.getvalue())
    return header, got_body


class TestRoundTrip:
    def test_empty_body(self):
        header, body = roundtrip("heartbeat")
        assert header["type"] == "heartbeat"
        assert header["body"] == 0
        assert body == b""
        assert "sha256" not in header

    def test_meta_and_body(self):
        header, body = roundtrip(
            "result", {"index": 3, "attempt": 2}, b"\x00\xff payload"
        )
        assert header["index"] == 3
        assert header["attempt"] == 2
        assert body == b"\x00\xff payload"

    @settings(max_examples=50, deadline=None)
    @given(body=st.binary(max_size=4096), index=st.integers(0, 1 << 30))
    def test_arbitrary_bodies_survive(self, body, index):
        header, got = roundtrip("shard", {"index": index}, body)
        assert got == body
        assert header["index"] == index

    def test_two_frames_back_to_back(self):
        wire = io.BytesIO()
        send_frame(wire, "a", body=b"one")
        send_frame(wire, "b", body=b"two")
        wire.seek(0)
        assert recv_frame(wire)[1] == b"one"
        assert recv_frame(wire)[1] == b"two"


class TestRejection:
    def test_clean_eof_is_connection_closed(self):
        with pytest.raises(FrameError, match="connection closed"):
            recv_frame(io.BytesIO(b""))

    def test_torn_frame_is_not_a_clean_close(self):
        data = encode_frame("result", body=b"x" * 100)
        with pytest.raises(FrameError, match="torn mid-transfer"):
            recv_frame(io.BytesIO(data[: len(data) // 2]))

    def test_corrupt_body_fails_the_digest(self):
        data = encode_frame("result", body=b"x" * 100)
        flipped = data[:-1] + bytes([data[-1] ^ 0xFF])
        with pytest.raises(FrameError, match="corrupt frame"):
            recv_frame(io.BytesIO(flipped))

    def test_oversized_header_claim_rejected(self):
        wire = struct.pack("!I", MAX_LINE_BYTES + 1)
        with pytest.raises(FrameError, match="header claims"):
            recv_frame(io.BytesIO(wire))

    def test_oversized_body_claim_rejected(self):
        blob = json.dumps(
            {"type": "result", "body": MAX_FRAME_BYTES + 1}
        ).encode("ascii")
        wire = struct.pack("!I", len(blob)) + blob
        with pytest.raises(FrameError, match="body claims"):
            recv_frame(io.BytesIO(wire))

    def test_negative_body_claim_rejected(self):
        blob = json.dumps({"type": "result", "body": -1}).encode("ascii")
        wire = struct.pack("!I", len(blob)) + blob
        with pytest.raises(FrameError, match="body claims"):
            recv_frame(io.BytesIO(wire))

    def test_malformed_header_json_rejected(self):
        blob = b"not json at all!"
        wire = struct.pack("!I", len(blob)) + blob
        with pytest.raises(FrameError, match="malformed frame header"):
            recv_frame(io.BytesIO(wire))

    def test_header_without_type_rejected(self):
        blob = json.dumps({"body": 0}).encode("ascii")
        wire = struct.pack("!I", len(blob)) + blob
        with pytest.raises(FrameError, match="malformed frame header"):
            recv_frame(io.BytesIO(wire))

    def test_encode_refuses_oversized_header(self):
        with pytest.raises(FrameError, match="header is"):
            encode_frame("x", {"pad": "y" * (MAX_LINE_BYTES + 1)})


class TestAuthHelpers:
    """The HMAC handshake primitives gating every pickled payload."""

    def test_load_auth_key_strips_and_encodes(self, monkeypatch):
        from repro.core.netproto import AUTH_KEY_ENV_VAR, load_auth_key

        assert load_auth_key("sesame\n") == b"sesame"
        assert load_auth_key("   ") is None
        monkeypatch.setenv(AUTH_KEY_ENV_VAR, "from-env")
        assert load_auth_key() == b"from-env"
        monkeypatch.delenv(AUTH_KEY_ENV_VAR)
        assert load_auth_key() is None

    def test_digest_depends_on_key_and_nonce(self):
        from repro.core.netproto import auth_digest, new_nonce

        nonce = new_nonce()
        assert auth_digest(b"k1", nonce) == auth_digest(b"k1", nonce)
        assert auth_digest(b"k1", nonce) != auth_digest(b"k2", nonce)
        assert auth_digest(b"k1", nonce) != auth_digest(b"k1", new_nonce())

    def test_check_rejects_wrong_or_non_string_answers(self):
        from repro.core.netproto import (
            auth_digest,
            check_auth_digest,
            new_nonce,
        )

        nonce = new_nonce()
        good = auth_digest(b"key", nonce)
        assert check_auth_digest(b"key", nonce, good)
        assert not check_auth_digest(b"key", nonce, good[:-1] + "0")
        assert not check_auth_digest(b"key", nonce, None)
        assert not check_auth_digest(b"key", nonce, 12345)

    def test_nonces_are_fresh(self):
        from repro.core.netproto import new_nonce

        assert len({new_nonce() for _ in range(32)}) == 32

    @pytest.mark.parametrize(
        "host,expected",
        [
            ("127.0.0.1", True),
            ("127.8.8.8", True),
            ("::1", True),
            ("localhost", True),
            ("0.0.0.0", False),
            ("10.0.0.7", False),
            ("example.com", False),
            ("", False),
        ],
    )
    def test_is_loopback_host(self, host, expected):
        from repro.core.netproto import is_loopback_host

        assert is_loopback_host(host) is expected
