"""The cube-pruning eq.-(25) solver vs the exhaustive reference.

``solve_si_cubes`` decides whole sub-cubes ``[L, U]`` of the candidate
lattice with one Φ evaluation, exploiting that eq. (13)'s resolution is
antitone in the candidate SI for non-nested knowledge terms.  On every
space where the exhaustive sweep runs, the two must return *identical*
solution sets; where the sweep is refused by the solver limit, the cube
solver is the complete route ``solve_si(method="auto")`` switches to.
"""

import pytest

from repro.core import solve_si, solve_si_cubes
from repro.figures import fig1_program, fig2_program, fig2_strong_init, fig2_weak_init
from repro.predicates import limits
from repro.predicates.limits import ExplicitStateLimitError


@pytest.fixture
def restore_limits():
    yield
    for name in limits.DEFAULT_LIMITS:
        limits.set_limit(name, None)


def _solutions(report):
    return tuple(p.fingerprint() for p in report.solutions)


class TestDifferentialAgainstExhaustive:
    def test_fig1_no_solution_both_ways(self):
        exhaustive = solve_si(fig1_program(), method="exhaustive")
        cubes = solve_si_cubes(fig1_program())
        assert not exhaustive.well_posed and not cubes.well_posed
        assert cubes.solutions == ()

    def test_fig2_solutions_bit_identical(self):
        program = fig2_program()
        for init in (fig2_weak_init, fig2_strong_init):
            variant = program.with_init(init(program))
            exhaustive = solve_si(variant, method="exhaustive")
            cubes = solve_si(variant, method="cubes")
            assert _solutions(exhaustive) == _solutions(cubes)
            assert exhaustive.well_posed

    def test_cube_probes_do_not_exceed_the_sweep(self):
        # 2^free candidates for the sweep; the cube solver's probe count
        # (decided cubes) can at worst match it, never exceed it.
        program = fig2_program()
        free = program.space.size - program.init.count()
        report = solve_si_cubes(program)
        assert report.candidates_checked <= 2 ** (free + 1) - 1

    def test_standard_program_degenerates_to_one_sst(self, counter_program):
        report = solve_si_cubes(counter_program)
        assert report.candidates_checked == 1
        assert _solutions(report) == _solutions(
            solve_si(counter_program)
        )


class TestRouting:
    def test_auto_routes_past_the_solver_limit(self, restore_limits):
        # Shrink the limit below Figure 2's 8 states: "auto" must switch
        # to cubes (its knowledge terms are non-nested) and still solve.
        program = fig2_program()
        limits.set_limit("solver", program.space.size - 1)
        with pytest.raises(ExplicitStateLimitError):
            solve_si(program, method="exhaustive")
        auto = solve_si(program)
        assert _solutions(auto) == _solutions(solve_si_cubes(fig2_program()))

    def test_nested_knowledge_is_refused_by_cubes(self):
        from repro.seqtrans import RELIABLE, SeqTransParams, build_kbp_protocol

        program = build_kbp_protocol(SeqTransParams(length=1), RELIABLE)
        nested = [
            t for t in program.knowledge_terms() if t.formula.knowledge_terms()
        ]
        assert nested  # K_S K_R x_k: the premise of this test
        with pytest.raises(ValueError, match="non-nested"):
            solve_si_cubes(program)

    def test_nested_knowledge_auto_stays_exhaustive(self, restore_limits):
        # Past the limit with nested knowledge there is no complete route:
        # auto must fall through to the exhaustive guard, whose message
        # names the remaining escape hatches.
        from repro.seqtrans import RELIABLE, SeqTransParams, build_kbp_protocol

        program = build_kbp_protocol(SeqTransParams(length=1), RELIABLE)
        with pytest.raises(ExplicitStateLimitError, match="solve_si_iterative"):
            solve_si(program)

    def test_cubes_reject_certificates_and_robustness(self):
        program = fig2_program()
        with pytest.raises(ValueError, match="cube-pruning"):
            solve_si(program, method="cubes", emit_certificate=True)
        with pytest.raises(ValueError, match="cubes"):
            solve_si(program, method="cubes", fault_policy=object())
        with pytest.raises(ValueError, match="method"):
            solve_si(program, method="telepathy")
