"""The sharded/batched eq.-(25) solver must be indistinguishable from serial.

Three layers of property tests:

* the candidate enumeration primitives (``_supersets_of``, Gray-code walks,
  shard assignment masks) cover the sublattice exactly once;
* ``batch_phi`` agrees with the serial resolver's Φ on every candidate,
  on both backends;
* whole solves — plain, certified, early-exit — produce reports (and
  certificate payloads) identical to the serial sweep, across worker
  counts and backends.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_phi_plan, solve_si, solve_si_parallel
from repro.core.kbp import (
    MAX_EXHAUSTIVE_STATES,
    CandidateResolver,
    _supersets_of,
)
from repro.core.parallel import (
    assignment_mask,
    default_workers,
    gray_masks,
    plan_shards,
)
from repro.predicates import Predicate, using_backend
from repro.predicates.backends import get_backend
from repro.statespace import BoolDomain, IntRangeDomain, space_of
from repro.unity import (
    Const,
    GuardDomainError,
    Program,
    Statement,
    Unary,
    Var,
    const,
    knows,
    lnot,
    var,
)


# ----------------------------------------------------------------------
# enumeration primitives
# ----------------------------------------------------------------------


@st.composite
def base_and_full(draw, max_bits: int = 10):
    """A (base, full) mask pair with base ⊆ full."""
    bits = draw(st.integers(min_value=1, max_value=max_bits))
    full = draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
    base = full & draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
    return base, full


@given(base_and_full())
def test_supersets_cover_the_interval_exactly_once(masks):
    base, full = masks
    free = full & ~base
    seen = list(_supersets_of(base, full))
    assert len(seen) == 1 << free.bit_count()
    assert len(set(seen)) == len(seen)
    for mask in seen:
        assert mask & base == base
        assert mask & ~full == 0


@given(base_and_full())
def test_supersets_descend_on_the_free_bits(masks):
    """The serial enumeration order certificates depend on: strictly
    decreasing free-bit submasks."""
    base, full = masks
    free = full & ~base
    subs = [mask & free for mask in _supersets_of(base, full)]
    assert subs == sorted(subs, reverse=True)


@given(st.lists(st.integers(min_value=0, max_value=20), unique=True, max_size=8))
def test_gray_walk_is_exhaustive_and_single_bit_stepped(positions):
    walk = list(gray_masks(positions))
    assert len(walk) == 1 << len(positions)
    assert len(set(walk)) == len(walk)
    allowed = 0
    for position in positions:
        allowed |= 1 << position
    for mask in walk:
        assert mask & ~allowed == 0
    for previous, current in zip(walk, walk[1:]):
        assert (previous ^ current).bit_count() == 1


@given(
    st.lists(st.integers(min_value=0, max_value=20), unique=True, max_size=6),
    st.integers(min_value=1, max_value=16),
)
def test_shard_plan_partitions_candidates(free_bits, workers):
    low, high = plan_shards(free_bits, workers)
    assert sorted(low + high) == sorted(free_bits)
    covered = set()
    for assignment in range(1 << len(high)):
        fixed = assignment_mask(high, assignment)
        for gray in gray_masks(low):
            covered.add(fixed | gray)
    assert len(covered) == 1 << len(free_bits)


def test_default_workers_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SOLVER_WORKERS", "3")
    assert default_workers() == 3
    monkeypatch.setenv("REPRO_SOLVER_WORKERS", "zero")
    with pytest.raises(ValueError):
        default_workers()
    monkeypatch.setenv("REPRO_SOLVER_WORKERS", "0")
    with pytest.raises(ValueError):
        default_workers()


# ----------------------------------------------------------------------
# random knowledge-based programs
# ----------------------------------------------------------------------

_VIEWS = {"P": ["a"], "Q": ["b", "c"]}


@st.composite
def random_kbps(draw):
    """Small KBPs over three Booleans with knowledge-bearing guards."""
    space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
    names = list(space.names)
    statements = []
    n_statements = draw(st.integers(min_value=2, max_value=3))
    for k in range(n_statements):
        target = draw(st.sampled_from(names))
        rhs = Const(draw(st.booleans()))
        process = draw(st.sampled_from(sorted(_VIEWS)))
        fact_var = draw(st.sampled_from(names))
        fact = Var(fact_var) if draw(st.booleans()) else Unary("not", Var(fact_var))
        guard = knows(process, fact)
        shape = draw(st.integers(min_value=0, max_value=3))
        if shape == 1:
            guard = lnot(guard)
        elif shape == 2:
            guard = guard & Var(draw(st.sampled_from(names)))
        elif shape == 3:
            guard = guard | Unary("not", Var(draw(st.sampled_from(names))))
        statements.append(
            Statement(name=f"s{k}", targets=(target,), exprs=(rhs,), guard=guard)
        )
    init_mask = 1 << draw(st.integers(min_value=0, max_value=space.size - 1))
    return Program(
        space,
        Predicate(space, init_mask),
        statements,
        processes=_VIEWS,
        name="random-kbp",
    )


# ----------------------------------------------------------------------
# batch_phi vs the serial resolver
# ----------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(random_kbps(), st.sampled_from(["int", "numpy"]))
def test_batch_phi_matches_resolver_phi(program, backend_name):
    plan = compile_phi_plan(program)
    assert plan is not None, "guard-only KBPs must compile"
    resolver = CandidateResolver(program)
    space = program.space
    masks = list(_supersets_of(program.init.mask, space.full_mask))
    backend = get_backend(backend_name)
    batched = backend.batch_phi(plan, masks)
    for mask, value in zip(masks, batched):
        assert value == resolver.phi(Predicate(space, mask)).mask


# ----------------------------------------------------------------------
# whole-solve equivalence
# ----------------------------------------------------------------------


def _assert_same_report(serial, parallel):
    assert parallel.candidates_checked == serial.candidates_checked
    assert tuple(p.mask for p in parallel.solutions) == tuple(
        p.mask for p in serial.solutions
    )


@settings(max_examples=15, deadline=None)
@given(random_kbps(), st.sampled_from(["int", "numpy"]))
def test_parallel_report_equals_serial_in_process(program, backend_name):
    with using_backend(backend_name):
        serial = solve_si(program, parallel="never")
        parallel = solve_si_parallel(program, workers=1, batch_size=3)
        _assert_same_report(serial, parallel)


@settings(max_examples=5, deadline=None)
@given(random_kbps(), st.sampled_from(["int", "numpy"]))
def test_parallel_report_equals_serial_multiprocess(program, backend_name):
    with using_backend(backend_name):
        serial = solve_si(program, parallel="never")
        parallel = solve_si_parallel(program, workers=2, batch_size=3)
        _assert_same_report(serial, parallel)


@settings(max_examples=6, deadline=None)
@given(random_kbps())
def test_certified_parallel_payload_is_byte_identical(program):
    from repro.certificates.canonical import canonical_dumps

    serial = solve_si(program, emit_certificate=True, parallel="never")
    parallel = solve_si_parallel(program, workers=2, emit_certificate=True)
    _assert_same_report(serial, parallel)
    assert canonical_dumps(parallel.certificate.to_payload()) == canonical_dumps(
        serial.certificate.to_payload()
    )


@settings(max_examples=10, deadline=None)
@given(random_kbps())
def test_any_solution_agrees_on_well_posedness(program):
    serial = solve_si(program, parallel="never")
    quick = solve_si_parallel(program, workers=1, any_solution=True)
    assert quick.well_posed == serial.well_posed
    for solution in quick.solutions:
        assert any(solution == s for s in serial.solutions)
    assert quick.candidates_checked <= serial.candidates_checked


def test_nested_knowledge_falls_back_to_resolver_path():
    """Nested K makes the plan ineligible; the sweep must still be exact."""
    space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
    statements = [
        Statement(
            name="s0",
            targets=("a",),
            exprs=(Const(True),),
            guard=knows("Q", knows("P", var("a"))),
        ),
        Statement(name="s1", targets=("b",), exprs=(Const(False),)),
    ]
    program = Program(
        space, Predicate(space, 1), statements, processes=_VIEWS, name="nested"
    )
    assert compile_phi_plan(program) is None
    serial = solve_si(program, parallel="never")
    parallel = solve_si_parallel(program, workers=2)
    _assert_same_report(serial, parallel)


def test_knowledge_in_assignments_is_ineligible_but_solvable():
    space = space_of(a=BoolDomain(), b=BoolDomain())
    statements = [
        Statement(
            name="s0",
            targets=("a",),
            exprs=(knows("P", var("b")),),
            guard=Const(True),
        ),
    ]
    program = Program(
        space,
        Predicate(space, 1),
        statements,
        processes={"P": ["a"], "Q": ["b"]},
        name="k-rhs",
    )
    assert compile_phi_plan(program) is None
    serial = solve_si(program, parallel="never")
    parallel = solve_si_parallel(program, workers=1)
    _assert_same_report(serial, parallel)


def test_domain_exit_raises_the_original_error():
    """A candidate-enabled domain exit surfaces as GuardDomainError, not as
    a batching artifact."""
    space = space_of(go=BoolDomain(), n=IntRangeDomain(0, 3))
    statements = [
        Statement(
            name="bump",
            targets=("n",),
            exprs=(var("n") + const(1),),
            guard=knows("Ctl", var("go")),
        ),
        Statement(name="start", targets=("go",), exprs=(const(True),)),
    ]
    program = Program(
        space,
        Predicate.from_callable(space, lambda s: s["go"] and s["n"] == 3),
        statements,
        processes={"Ctl": ("go",), "Clock": ("n",)},
        name="overflow",
    )
    plan = compile_phi_plan(program)
    assert plan is not None and any(s.poison_mask for s in plan.statements)
    with pytest.raises(GuardDomainError):
        solve_si(program, parallel="never")
    with pytest.raises(GuardDomainError):
        solve_si_parallel(program, workers=1)


def test_standard_program_delegates_to_serial():
    from ..conftest import make_counter_program

    program = make_counter_program()
    serial = solve_si(program, parallel="never")
    parallel = solve_si_parallel(program, workers=4)
    _assert_same_report(serial, parallel)


def test_solve_si_routing_knobs():
    space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
    program = Program(
        space,
        Predicate(space, 1),
        [
            Statement(
                name="s0",
                targets=("a",),
                exprs=(Const(True),),
                guard=knows("P", var("a")),
            )
        ],
        processes=_VIEWS,
        name="routed",
    )
    with pytest.raises(ValueError):
        solve_si(program, parallel="sometimes")
    forced = solve_si(program, parallel="force", workers=1)
    serial = solve_si(program, parallel="never")
    _assert_same_report(serial, forced)


def test_size_guard_names_both_escape_hatches():
    from repro.seqtrans import SeqTransParams, RELIABLE, build_kbp_protocol

    big = build_kbp_protocol(SeqTransParams(length=1), RELIABLE)
    assert big.space.size > MAX_EXHAUSTIVE_STATES
    with pytest.raises(ValueError, match="solve_si_iterative") as exc_info:
        solve_si(big)
    assert "parallel" in str(exc_info.value)
    with pytest.raises(ValueError, match="solve_si_iterative"):
        solve_si_parallel(big)
