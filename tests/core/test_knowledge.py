"""The knowledge operator — paper eq. (13) and the group extensions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KnowledgeOperator
from repro.predicates import Predicate, depends_only_on, var_true, wcyl
from repro.statespace import BoolDomain, space_of
from repro.transformers import strongest_invariant
from repro.unity import knows, land, lor, var

from ..conftest import make_counter_program, program_with_predicates


@pytest.fixture
def space():
    return space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())


def operator_on(space, si_mask=None, views=None):
    si = Predicate(space, si_mask) if si_mask is not None else Predicate.true(space)
    views = views or {"P": ["a"], "Q": ["b", "c"]}
    return KnowledgeOperator(space, si, views)


class TestDefinition13:
    def test_formula_matches_definition(self, space):
        """K_i p == p ∧ (wcyl.V_i.(SI ⇒ p) ∨ ¬SI), literally."""
        si = Predicate.from_callable(space, lambda s: s["a"] or s["b"])
        op = KnowledgeOperator(space, si, {"P": ["a"]})
        for mask in range(0, 1 << space.size, 3):
            p = Predicate(space, mask)
            expected = p & (wcyl(["a"], si.implies(p)) | ~si)
            assert op.knows("P", p) == expected

    def test_semantic_reading_on_reachable_states(self, space):
        """On SI: knows p iff p holds at all SI-states with the same view."""
        si = Predicate.from_callable(space, lambda s: not (s["a"] and s["b"]))
        op = KnowledgeOperator(space, si, {"P": ["a"]})
        p = var_true(space, "b")
        kp = op.knows("P", p)
        for s in si.states():
            indistinguishable = [
                t for t in si.states() if t["a"] == s["a"]
            ]
            expected = all(p.holds_at(t) for t in indistinguishable)
            assert kp.holds_at(s) == expected

    def test_value_is_p_off_si(self, space):
        """The paper's convention: K_i p ≡ p on unreachable states."""
        si = var_true(space, "a")
        op = KnowledgeOperator(space, si, {"P": ["a"]})
        p = Predicate.from_callable(space, lambda s: s["b"] != s["c"])
        kp = op.knows("P", p)
        for s in (~si).states():
            assert kp.holds_at(s) == p.holds_at(s)

    def test_result_is_locally_determined_on_si(self, space):
        """Within SI, K_i p cannot distinguish states with equal views."""
        si = Predicate.from_callable(space, lambda s: s["a"] or not s["c"])
        op = KnowledgeOperator(space, si, {"P": ["a", "b"]})
        p = var_true(space, "c")
        kp = op.knows("P", p) & si
        for s in si.states():
            for t in si.states():
                if (s["a"], s["b"]) == (t["a"], t["b"]):
                    assert kp.holds_at(s) == kp.holds_at(t)

    def test_knows_simple_agrees_on_si(self, space):
        si = Predicate.from_callable(space, lambda s: s["b"])
        op = KnowledgeOperator(space, si, {"P": ["a"]})
        p = Predicate.from_callable(space, lambda s: s["b"] or s["c"])
        assert (op.knows("P", p) & si) == (op.knows_simple("P", p) & si)

    def test_unknown_process(self, space):
        op = operator_on(space)
        with pytest.raises(KeyError):
            op.knows("Ghost", Predicate.true(space))

    def test_cross_space_predicate(self, space):
        op = operator_on(space)
        other = space_of(x=BoolDomain())
        with pytest.raises(ValueError):
            op.knows("P", Predicate.true(other))

    def test_of_program(self):
        program = make_counter_program()
        op = KnowledgeOperator.of_program(program)
        assert op.si == strongest_invariant(program)


class TestEpistemicDual:
    def test_possible_definition(self, space):
        op = operator_on(space, si_mask=0b10110101)
        p = var_true(space, "b")
        assert op.possible("P", p) == ~op.knows("P", ~p)

    def test_knows_implies_possible_on_si(self, space):
        si = Predicate.from_callable(space, lambda s: s["a"] or s["b"])
        op = KnowledgeOperator(space, si, {"P": ["a"]})
        p = var_true(space, "b")
        assert (op.knows("P", p) & si).entails(op.possible("P", p))


class TestGroupKnowledge:
    def test_everyone_knows_is_conjunction(self, space):
        op = operator_on(space)
        p = var_true(space, "c")
        expected = op.knows("P", p) & op.knows("Q", p)
        assert op.everyone_knows(["P", "Q"], p) == expected

    def test_common_knowledge_strongest(self, space):
        """C_G p is a fixpoint of E_G(p ∧ ·) and implies every E_G iterate."""
        si = Predicate.from_callable(space, lambda s: s["a"] or s["b"] or s["c"])
        op = KnowledgeOperator(space, si, {"P": ["a"], "Q": ["b"]})
        p = Predicate.from_callable(space, lambda s: s["a"] or s["b"])
        ck = op.common_knowledge(["P", "Q"], p)
        assert ck == op.everyone_knows(["P", "Q"], p & ck)
        iterate = op.everyone_knows(["P", "Q"], p)
        for _ in range(4):
            assert ck.entails(iterate)
            iterate = op.everyone_knows(["P", "Q"], p & iterate)

    def test_common_knowledge_of_true(self, space):
        op = operator_on(space)
        assert op.common_knowledge(["P", "Q"], Predicate.true(space)).is_everywhere()

    def test_distributed_knowledge_pools_views(self, space):
        si = Predicate.from_callable(space, lambda s: (s["a"] == s["c"]) or s["b"])
        op = KnowledgeOperator(space, si, {"P": ["a"], "Q": ["b"]})
        p = var_true(space, "c")
        dk = op.distributed_knowledge(["P", "Q"], p)
        # Distributed knowledge is at least individual knowledge.
        assert (op.knows("P", p) & si).entails(dk)
        assert (op.knows("Q", p) & si).entails(dk)

    def test_empty_group_rejected(self, space):
        op = operator_on(space)
        with pytest.raises(ValueError):
            op.everyone_knows([], Predicate.true(space))


class TestExpressionInterpretation:
    def test_plain_expression(self, space):
        op = operator_on(space)
        p = op.predicate_of(land(var("a"), lor(var("b"), var("c"))))
        expected = Predicate.from_callable(space, lambda s: s["a"] and (s["b"] or s["c"]))
        assert p == expected

    def test_single_knowledge_term(self, space):
        si = Predicate.from_callable(space, lambda s: s["a"] or s["b"])
        op = KnowledgeOperator(space, si, {"P": ["a"]})
        expr = knows("P", var("b"))
        assert op.predicate_of(expr) == op.knows("P", var_true(space, "b"))

    def test_nested_knowledge_resolved_innermost_first(self, space):
        si = Predicate.from_callable(space, lambda s: s["a"] or s["b"])
        op = KnowledgeOperator(space, si, {"P": ["a"], "Q": ["b", "c"]})
        inner = knows("Q", var("a"))
        outer = knows("P", inner)
        inner_pred = op.knows("Q", var_true(space, "a"))
        assert op.predicate_of(outer) == op.knows("P", inner_pred)

    def test_resolution_covers_nested_terms(self, space):
        op = operator_on(space)
        inner = knows("Q", var("a"))
        outer = knows("P", inner)
        resolution = op.resolve_terms([outer])
        assert inner in resolution and outer in resolution

    def test_with_si(self, space):
        op = operator_on(space)
        stronger = op.with_si(var_true(space, "a"))
        assert stronger.si == var_true(space, "a")
        assert stronger.process_vars == op.process_vars
