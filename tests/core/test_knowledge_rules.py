"""The knowledge↔kernel bridge rules: eqs. (14), (23), (24) as proof rules."""

import pytest

from repro.core import KnowledgeOperator, k_invariant_intro, k_localization, k_truth
from repro.predicates import Predicate
from repro.proofs import Invariant, ProofContext, ProofError

from ..conftest import make_counter_program


@pytest.fixture
def setup():
    program = make_counter_program()
    ctx = ProofContext(program)
    operator = KnowledgeOperator.of_program(program, si=ctx.si)
    return program, ctx, operator


class TestKTruth:
    def test_produces_invariant(self, setup):
        program, ctx, operator = setup
        p = Predicate.from_callable(program.space, lambda s: s["n"] > 0)
        proof = k_truth(ctx, operator, "Clock", p)
        assert isinstance(proof.conclusion, Invariant)
        assert proof.conclusion.p.is_everywhere()  # (14) holds everywhere

    def test_si_mismatch_rejected(self, setup):
        program, ctx, operator = setup
        wrong = operator.with_si(Predicate.true(program.space) & ~ctx.si)
        if wrong.si == ctx.si:
            pytest.skip("SI happens to be empty-complement")
        with pytest.raises(ProofError):
            k_truth(ctx, wrong, "Clock", Predicate.true(program.space))


class TestKInvariantIntro:
    def test_eq23_forward(self, setup):
        program, ctx, operator = setup
        bound = Predicate.from_callable(program.space, lambda s: s["n"] <= 3)
        premise = ctx.invariant_by_si(bound)
        proof = k_invariant_intro(ctx, operator, "Clock", premise)
        assert ctx.si.entails(proof.conclusion.p)

    def test_requires_invariant_premise(self, setup):
        program, ctx, operator = setup
        not_invariant = ctx.unless_from_text(
            Predicate.true(program.space), Predicate.true(program.space)
        )
        with pytest.raises(ProofError):
            k_invariant_intro(ctx, operator, "Clock", not_invariant)


class TestKLocalization:
    def test_eq24_promotes_local_facts(self, setup):
        """From invariant (n ≥ 1 ⇒ go), Clock (who sees n) knows go."""
        program, ctx, operator = setup
        q = Predicate.from_callable(program.space, lambda s: s["n"] >= 1)
        p = Predicate.from_callable(program.space, lambda s: s["go"])
        premise = ctx.invariant_by_si(q.implies(p))
        proof = k_localization(ctx, operator, "Clock", q, p, premise)
        conclusion = proof.conclusion.p
        # In a reachable state with n ≥ 1, Clock knows go.
        state = program.space.index_of({"go": True, "n": 2})
        assert conclusion.holds_at(state)
        assert operator.knows("Clock", p).holds_at(state)

    def test_nonlocal_q_rejected(self, setup):
        """q mentioning variables outside the process view is rejected."""
        program, ctx, operator = setup
        q = Predicate.from_callable(program.space, lambda s: s["go"])  # not Clock's
        p = Predicate.true(program.space)
        premise = ctx.invariant_by_si(q.implies(p))
        with pytest.raises(ProofError):
            k_localization(ctx, operator, "Clock", q, p, premise)

    def test_wrong_premise_shape_rejected(self, setup):
        program, ctx, operator = setup
        q = Predicate.from_callable(program.space, lambda s: s["n"] >= 1)
        p = Predicate.from_callable(program.space, lambda s: s["go"])
        unrelated = ctx.invariant_by_si(Predicate.true(program.space) | p)
        # `unrelated` is `invariant true`, not `invariant (q ⇒ p)` — but
        # true is SI-equivalent to (q ⇒ p) here only if the implication is
        # SI-valid; craft a genuinely different premise instead.
        bad = ctx.invariant_by_si(ctx.si)
        if ctx.si == (q.implies(p)) or ctx.si.iff(q.implies(p)).is_everywhere():
            pytest.skip("premise accidentally matches")
        with pytest.raises(ProofError):
            k_localization(ctx, operator, "Clock", q, p, bad)

    def test_assumptions_propagate(self, setup):
        program, ctx, operator = setup
        q = Predicate.from_callable(program.space, lambda s: s["n"] >= 1)
        p = Predicate.from_callable(program.space, lambda s: s["go"])
        premise = ctx.invariant_by_si(q.implies(p))
        proof = k_localization(ctx, operator, "Clock", q, p, premise)
        assert proof.assumptions() == []
        assert proof.size() == 2
