"""§6.3/§6.4: the standard protocol instantiates the KBP — until a priori info."""

import pytest

from repro.seqtrans import (
    RELIABLE,
    SeqTransParams,
    bounded_loss,
    build_kbp_protocol,
    check_instantiation,
    k_r_value,
    k_s_k_r,
    proposed_resolution,
)


@pytest.fixture(scope="module")
def no_apriori():
    return check_instantiation(SeqTransParams(length=1), bounded_loss(1))


@pytest.fixture(scope="module")
def with_apriori():
    return check_instantiation(
        SeqTransParams(length=1, apriori={0: "a"}), bounded_loss(1)
    )


class TestWithoutApriori:
    def test_instantiates(self, no_apriori):
        assert no_apriori.sufficient
        assert no_apriori.instantiates
        assert no_apriori.transitions_match

    def test_every_term_exact(self, no_apriori):
        for term in no_apriori.terms:
            assert term.exact, term.label
            assert term.sufficient, term.label


class TestWithApriori:
    def test_still_sufficient(self, with_apriori):
        """§6.4: the protocol stays correct — proposed ⇒ actual knowledge."""
        assert with_apriori.sufficient

    def test_no_longer_instantiates(self, with_apriori):
        """§6.4: ... but it is no longer an instantiation of the KBP."""
        assert not with_apriori.instantiates

    def test_mismatch_is_where_expected(self, with_apriori):
        """The known element x_0 = 'a' is exactly where exactness fails."""
        inexact = {t.label for t in with_apriori.terms if not t.exact}
        assert "K_R(x_0 = 'a')" in inexact
        # The a priori *false* value stays exact (nobody can know x_0 = 'b').
        exact = {t.label for t in with_apriori.terms if t.exact}
        assert "K_R(x_0 = 'b')" in exact

    def test_actual_knowledge_strictly_wider(self, with_apriori):
        for term in with_apriori.terms:
            if not term.exact:
                assert term.actual_states > term.proposed_states

    def test_transitions_differ(self, with_apriori):
        """The resolved KBP delivers immediately; Figure 4 waits for a message."""
        assert not with_apriori.transitions_match


class TestProposedResolution:
    def test_covers_all_program_terms(self):
        params = SeqTransParams(length=1)
        kbp = build_kbp_protocol(params, RELIABLE)
        resolution = proposed_resolution(params, kbp)
        assert set(kbp.knowledge_terms()) <= set(resolution)

    def test_keys_are_structural(self):
        params = SeqTransParams(length=1)
        kbp = build_kbp_protocol(params, RELIABLE)
        resolution = proposed_resolution(params, kbp)
        assert k_r_value(0, "a") in resolution
        assert k_s_k_r(params, 0) in resolution
