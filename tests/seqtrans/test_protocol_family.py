"""The classical refinement family: alternating bit and Stenning."""

import pytest

from repro.seqtrans import (
    LOSSY,
    RELIABLE,
    SeqTransParams,
    bounded_loss,
    build_alternating_bit,
    build_stenning,
    check_spec,
)
from repro.transformers import strongest_invariant


@pytest.fixture(scope="module", params=["ab", "stenning"])
def builder(request):
    return {
        "ab": build_alternating_bit,
        "stenning": build_stenning,
    }[request.param]


class TestFamilyCorrectness:
    def test_spec_with_bounded_loss(self, builder):
        params = SeqTransParams(length=1)
        program = builder(params, bounded_loss(1))
        report = check_spec(program, params)
        assert report.satisfied, program.name

    def test_spec_with_reliable(self, builder):
        params = SeqTransParams(length=1)
        program = builder(params, RELIABLE)
        assert check_spec(program, params).satisfied

    def test_lossy_safety_but_no_liveness(self, builder):
        params = SeqTransParams(length=1)
        program = builder(params, LOSSY)
        report = check_spec(program, params)
        assert report.safety_holds
        assert not report.liveness_all


class TestAlternatingBitSpecifics:
    def test_finite_state_is_small(self):
        """The point of the refinement: AB needs no unbounded counters —
        its per-message control state is a single bit."""
        params = SeqTransParams(length=1)
        program = build_alternating_bit(params, RELIABLE)
        assert program.space.var("sbit").domain.values == (False, True)

    def test_bit_alternation_invariant(self):
        """On SI the sender/receiver bits agree exactly when in sync:
        sbit = rbit iff the current element is not yet delivered."""
        params = SeqTransParams(length=1)
        program = build_alternating_bit(params, RELIABLE)
        si = strongest_invariant(program)
        for state in si.states():
            in_sync = state["sbit"] == state["rbit"]
            assert in_sync == (len(state["w"]) == state["i"])


class TestStenningSpecifics:
    def test_acks_only_after_delivery(self):
        """The receiver never acks a sequence number it has not delivered."""
        params = SeqTransParams(length=2)
        program = build_stenning(params, RELIABLE)
        si = strongest_invariant(program)
        for state in si.states():
            if isinstance(state["cr"], int):
                assert state["cr"] < len(state["w"])

    def test_window_one_invariant(self):
        """Sender index never runs ahead of delivery by more than one."""
        params = SeqTransParams(length=2)
        program = build_stenning(params, RELIABLE)
        si = strongest_invariant(program)
        for state in si.states():
            assert state["i"] <= len(state["w"]) + 1
