"""§6.4 quantitatively: KBP solutions and the message savings."""

import pytest

from repro.seqtrans import (
    RELIABLE,
    SeqTransParams,
    bounded_loss,
    check_spec,
    compare_with_apriori,
    solve_kbp,
)


class TestSolveKbp:
    def test_converges_without_apriori(self):
        solution = solve_kbp(SeqTransParams(length=1), RELIABLE)
        assert solution is not None
        assert solution.iterations >= 1
        assert not solution.resolved.is_knowledge_based()

    def test_solution_solves_equation_25(self):
        from repro.core import is_solution
        from repro.seqtrans import build_kbp_protocol

        params = SeqTransParams(length=1)
        kbp = build_kbp_protocol(params, RELIABLE)
        solution = solve_kbp(params, RELIABLE)
        assert is_solution(kbp, solution.si)

    def test_resolved_protocol_satisfies_spec(self):
        params = SeqTransParams(length=1)
        solution = solve_kbp(params, bounded_loss(1))
        report = check_spec(solution.resolved, params, si=solution.si)
        assert report.satisfied

    def test_full_apriori_needs_no_data_communication(self):
        """All of x known a priori: no data message is ever transmitted and
        no pre-completion ack is ever sent.

        (The paper's unbounded protocol has "no communication or
        synchronization at all"; the bounded model keeps one completion
        ack ``j = L`` by design — see the endgame note in
        :mod:`repro.seqtrans.kbp_protocol`.)
        """
        params = SeqTransParams(length=1, apriori={0: "a"})
        solution = solve_kbp(params, RELIABLE)
        from repro.statespace import BOT

        for state in solution.si.states():
            assert state["cs"] is BOT  # the data channel is never used
            assert state["cr"] is BOT or state["cr"] == params.length


class TestMessageSavings:
    def test_no_apriori_no_savings(self):
        params = SeqTransParams(length=1)
        comparison = compare_with_apriori(params, RELIABLE, runs=10, seed=7)
        assert comparison.standard_correct and comparison.kbp_correct
        assert comparison.savings == pytest.approx(0.0, abs=1e-9)

    def test_apriori_saves_every_message(self):
        """L = 1 with x_0 known: the KBP-consistent protocol sends nothing,
        the standard protocol still does its send/ack round."""
        params = SeqTransParams(length=1, apriori={0: "a"})
        comparison = compare_with_apriori(params, RELIABLE, runs=10, seed=7)
        assert comparison.standard_correct and comparison.kbp_correct
        assert comparison.kbp_messages == 0.0
        assert comparison.standard_messages > 0.0
        assert comparison.savings > 0.0
