"""Figure 4 (bounded): construction, specification, proposed predicates."""

import pytest

from repro.predicates import Predicate
from repro.seqtrans import (
    LOSSY,
    RELIABLE,
    SeqTransParams,
    bounded_loss,
    build_standard_protocol,
    check_spec,
    proposed_k_r_any,
    proposed_k_r_value,
    proposed_k_s_k_r,
    safety_predicate,
)
from repro.statespace import BOT
from repro.transformers import strongest_invariant


@pytest.fixture(scope="module")
def small():
    params = SeqTransParams(length=1)
    program = build_standard_protocol(params, bounded_loss(1))
    return params, program, strongest_invariant(program)


class TestConstruction:
    def test_statement_roster(self, small):
        _, program, _ = small
        names = {s.name for s in program.statements}
        assert names == {
            "snd_data",
            "snd_next",
            "rcv_deliver_a",
            "rcv_deliver_b",
            "rcv_ack",
            "lose_data",
            "lose_ack",
        }

    def test_processes(self, small):
        _, program, _ = small
        assert program.process("Sender").variables == {"x", "i", "z"}
        assert program.process("Receiver").variables == {"w", "j", "zp"}

    def test_init_frees_x(self, small):
        params, program, _ = small
        # Every x value is initially possible (no a priori information).
        assert program.init.count() == len(params.alphabet) ** params.length

    def test_apriori_restricts_init(self):
        params = SeqTransParams(length=2, apriori={0: "a"})
        program = build_standard_protocol(params, RELIABLE)
        for state in program.init.states():
            assert state["x"][0] == "a"

    def test_params_validation(self):
        with pytest.raises(ValueError):
            SeqTransParams(length=0)
        with pytest.raises(ValueError):
            SeqTransParams(alphabet=("a", "a"))
        with pytest.raises(ValueError):
            SeqTransParams(length=1, apriori={3: "a"})
        with pytest.raises(ValueError):
            SeqTransParams(length=1, apriori={0: "zzz"})


class TestSpecification:
    def test_bounded_loss_satisfies_spec(self, small):
        params, program, si = small
        report = check_spec(program, params, si)
        assert report.satisfied
        assert report.si_states == si.count()

    def test_reliable_satisfies_spec(self):
        params = SeqTransParams(length=1)
        program = build_standard_protocol(params, RELIABLE)
        assert check_spec(program, params).satisfied

    def test_lossy_fails_liveness_only(self):
        params = SeqTransParams(length=1)
        program = build_standard_protocol(params, LOSSY)
        report = check_spec(program, params)
        assert report.safety_holds
        assert not report.liveness_all

    def test_safety_predicate_semantics(self, small):
        _, program, _ = small
        p = safety_predicate(program.space)
        good = program.space.state_of(
            {
                "x": ("a",),
                "i": 0,
                "z": BOT,
                "w": ("a",),
                "j": 1,
                "zp": BOT,
                "cs": BOT,
                "cr": BOT,
                "bs": 1,
                "br": 1,
            }
        )
        bad = good.updated(w=("b",))
        assert p.holds_at(good)
        assert not p.holds_at(bad)

    def test_transmission_terminates(self, small):
        """Reachable fixed points have everything delivered and acked."""
        _, program, si = small
        from repro.seqtrans import delivered_all

        fixed = program.fixed_point() & si
        assert not fixed.is_false()
        done = delivered_all(program.space, SeqTransParams(length=1))
        assert fixed.entails(done)


class TestProposedPredicates:
    def test_eq50_shape(self, small):
        _, program, _ = small
        space = program.space
        p = proposed_k_r_value(space, 0, "a")
        received = space.state_of(
            {
                "x": ("a",),
                "i": 0,
                "z": BOT,
                "w": (),
                "j": 0,
                "zp": (0, "a"),
                "cs": BOT,
                "cr": BOT,
                "bs": 1,
                "br": 1,
            }
        )
        delivered = received.updated(w=("a",), j=1, zp=BOT)
        neither = received.updated(zp=BOT)
        assert p.holds_at(received)
        assert p.holds_at(delivered)
        assert not p.holds_at(neither)

    def test_eq51_shape(self, small):
        _, program, _ = small
        space = program.space
        p = proposed_k_s_k_r(space, 0)
        acked = space.state_of(
            {
                "x": ("a",),
                "i": 0,
                "z": 1,
                "w": ("a",),
                "j": 1,
                "zp": BOT,
                "cs": BOT,
                "cr": BOT,
                "bs": 1,
                "br": 1,
            }
        )
        assert p.holds_at(acked)
        assert not p.holds_at(acked.updated(z=BOT))

    def test_k_r_any_is_disjunction(self, small):
        params, program, _ = small
        space = program.space
        union = proposed_k_r_value(space, 0, "a") | proposed_k_r_value(space, 0, "b")
        assert proposed_k_r_any(space, params, 0) == union

    def test_truthfulness_on_si(self, small):
        """(61): on reachable states the proposed K_R implies the fact."""
        _, program, si = small
        space = program.space
        for alpha in ("a", "b"):
            fact = Predicate.from_callable(space, lambda s, a=alpha: s["x"][0] == a)
            assert (proposed_k_r_value(space, 0, alpha) & si).entails(fact)
