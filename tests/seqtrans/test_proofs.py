"""Machine-checked replays of the paper's §6 derivations (L = 1 instances)."""

import pytest

from repro.proofs import ProofContext, ProofError
from repro.seqtrans import (
    LOSSY,
    RELIABLE,
    SeqTransParams,
    bounded_loss,
    build_standard_protocol,
    prove_all_standard,
    prove_liveness,
)
from repro.seqtrans.proofs_standard import (
    prove_36,
    prove_52,
    prove_54,
    prove_55,
    prove_56,
    prove_safety,
)


@pytest.fixture(scope="module")
def instance():
    params = SeqTransParams(length=1)
    program = build_standard_protocol(params, bounded_loss(1))
    return params, program


class TestStandardProofs:
    def test_full_bundle_checks(self, instance):
        params, program = instance
        proofs = prove_all_standard(program, params)
        assert proofs.total_steps() > 30
        # The derivations are assumption-free: everything was discharged.
        assert proofs.safety.assumptions() == []
        assert proofs.inv62[0].assumptions() == []

    def test_safety_tree_shape(self, instance):
        params, program = instance
        ctx = ProofContext(program)
        proof = prove_safety(ctx, params)
        rendered = proof.pretty()
        assert "invariant-weakening" in rendered
        assert "invariant-induction(32)" in rendered

    def test_invariant36(self, instance):
        params, program = instance
        ctx = ProofContext(program)
        proof = prove_36(ctx)
        assert ctx.si.entails(proof.conclusion.p)

    def test_inv54_all_indices(self, instance):
        params, program = instance
        ctx = ProofContext(program)
        for k in range(params.length + 1):
            proof = prove_54(ctx, k)
            assert ctx.si.entails(proof.conclusion.p)

    def test_stability_55_56(self, instance):
        params, program = instance
        ctx = ProofContext(program)
        prove_55(ctx, 0)
        for alpha in params.alphabet:
            prove_56(ctx, 0, alpha)

    def test_52_uses_localization(self, instance):
        params, program = instance
        from repro.core import KnowledgeOperator

        ctx = ProofContext(program)
        operator = KnowledgeOperator.of_program(program, si=ctx.si)
        proof = prove_52(ctx, operator, 1)
        assert "K-localization(24)" in proof.pretty()


class TestLivenessProofs:
    def test_bounded_loss_proves(self, instance):
        params, program = instance
        proofs = prove_liveness(program, params)
        assert set(proofs.per_index) == {0}
        assert proofs.total_steps() > 30

    def test_reliable_proves(self):
        params = SeqTransParams(length=1)
        program = build_standard_protocol(params, RELIABLE)
        assert prove_liveness(program, params).per_index[0] is not None

    def test_lossy_channel_refused_at_model_checked_leaf(self):
        """The (Kbp-1)/(Kbp-2) leaves fail for the unrestricted lossy channel,
        so the whole derivation correctly refuses to go through."""
        params = SeqTransParams(length=1)
        program = build_standard_protocol(params, LOSSY)
        with pytest.raises(ProofError):
            prove_liveness(program, params)

    def test_final_property_is_the_spec(self, instance):
        params, program = instance
        from repro.seqtrans.spec import w_length_eq, w_length_gt

        proofs = prove_liveness(program, params)
        conclusion = proofs.per_index[0].conclusion
        assert conclusion.p == w_length_eq(program.space, 0)
        assert conclusion.q == w_length_gt(program.space, 0)

    def test_derivation_mirrors_paper_numbering(self, instance):
        params, program = instance
        proofs = prove_liveness(program, params)
        rendered = proofs.per_index[0].pretty()
        for marker in ("(40)", "(41)", "(43)", "(44)", "(45)", "(49)", "PSP",
                       "substitute |w| for j"):
            assert marker in rendered, marker


class TestAssumeMode:
    """channel_mode="assume": the paper's mixed-specification reading."""

    def test_assumptions_carried_by_the_proof(self, instance):
        params, program = instance
        proofs = prove_liveness(program, params, channel_mode="assume")
        assumptions = proofs.per_index[0].assumptions()
        # One ack-direction leaf plus one data-direction leaf per symbol.
        assert len(assumptions) == 1 + len(params.alphabet)

    def test_assume_mode_works_even_on_lossy_channel(self):
        """The derivation is valid *relative to* the assumptions — it no
        longer cares whether this channel satisfies them."""
        params = SeqTransParams(length=1)
        program = build_standard_protocol(params, LOSSY)
        proofs = prove_liveness(program, params, channel_mode="assume")
        assert proofs.per_index[0].assumptions()

    def test_assumptions_match_the_registered_properties(self, instance):
        from repro.seqtrans import channel_liveness_assumptions

        params, program = instance
        registered = channel_liveness_assumptions(program, params)
        proofs = prove_liveness(program, params, channel_mode="assume")
        used = proofs.per_index[0].assumptions()
        for assumption in used:
            assert assumption in registered

    def test_check_mode_discharges_everything(self, instance):
        params, program = instance
        proofs = prove_liveness(program, params, channel_mode="check")
        assert proofs.per_index[0].assumptions() == []

    def test_unknown_mode_rejected(self, instance):
        params, program = instance
        with pytest.raises(ValueError):
            prove_liveness(program, params, channel_mode="hope")
