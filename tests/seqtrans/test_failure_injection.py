"""Failure injection: deliberately broken designs must be caught.

Each test reconstructs a *wrong* variant of a protocol or channel — the
kind of bug the model checker caught during this reproduction's own
development — and asserts the verification machinery rejects it.  These
double as regression tests for the checkers' sensitivity.
"""

import pytest

from repro.predicates import Predicate
from repro.proofs import refute_leads_to
from repro.seqtrans import (
    SeqTransParams,
    bounded_loss,
    build_standard_protocol,
    check_spec,
)
from repro.seqtrans.spec import w_length_eq, w_length_gt
from repro.statespace import BOT
from repro.unity import Length, Proj, Statement, const, lnot, var


PARAMS = SeqTransParams(length=1)


def _replace_statement(program, name, **changes):
    """A copy of the program with one statement rebuilt."""
    replaced = []
    for stmt in program.statements:
        if stmt.name == name:
            replaced.append(
                Statement(
                    name=stmt.name,
                    targets=changes.get("targets", stmt.targets),
                    exprs=changes.get("exprs", stmt.exprs),
                    guard=changes.get("guard", stmt.guard),
                )
            )
        else:
            replaced.append(stmt)
    return program.with_statements(replaced, name_suffix="@injected")


class TestChannelDesignNecessity:
    def test_budget_reset_is_essential(self):
        """A bounded-loss channel whose budget never replenishes degrades to
        finitely-many losses total — liveness still holds, but the converse
        injection (losses never *charged*) breaks it."""
        program = build_standard_protocol(PARAMS, bounded_loss(1))
        # Remove the budget charge from lose_data: it becomes a free,
        # unbounded loss — the fairness assumption is gone.
        lose = program.statement("lose_data")
        broken = _replace_statement(
            program,
            "lose_data",
            targets=("cs",),
            exprs=(const(BOT),),
            guard=var("cs").ne(const(BOT)),
        )
        report = check_spec(broken, PARAMS)
        assert report.safety_holds
        assert not report.liveness_all

    def test_budget_charge_on_ack_loss_too(self):
        """Symmetric injection on the ack channel.

        At L = 1 delivery liveness survives (the sender never needs an ack
        to keep retransmitting x_0) — what dies is the sender ever
        *learning* the transmission completed: ``true ↦ z = 1`` fails,
        i.e. (Kbp-2)'s conclusion ``K_S(j ≥ k)`` is never attained.
        """
        program = build_standard_protocol(PARAMS, bounded_loss(1))
        broken = _replace_statement(
            program,
            "lose_ack",
            targets=("cr",),
            exprs=(const(BOT),),
            guard=var("cr").ne(const(BOT)),
        )
        report = check_spec(broken, PARAMS)
        assert report.satisfied  # delivery itself is fine at L = 1 ...
        space = broken.space
        acked = Predicate.from_callable(space, lambda s: s["z"] == 1)
        refutation = refute_leads_to(broken, Predicate.true(space), acked)
        assert refutation is not None  # ... but the ack never arrives


class TestProtocolBugsCaught:
    def test_stenning_ack_on_receipt_bug(self):
        """The development bug: acking *received* (not delivered) messages
        lets the ack overtake delivery; the element is stranded."""
        from repro.seqtrans.stenning import build_stenning

        correct = build_stenning(PARAMS, bounded_loss(1))
        # Re-break it: ack whenever the mailbox is non-empty.
        broken = _replace_statement(
            correct,
            "st_rcv_ack",
            guard=var("zb").ne(const(BOT)),
        )
        # ... and let the idle receive also fire under a held message,
        # restoring the racy overwrite.
        broken = _replace_statement(
            broken,
            "st_rcv_idle",
            guard=var("zb").ne(const("never")),  # i.e. always enabled
        )
        report = check_spec(broken, PARAMS)
        assert report.safety_holds  # never delivers *wrong* data ...
        assert not report.liveness_all  # ... but can fail to deliver at all

    def test_receiver_overwrite_race(self):
        """Figure 4 variant where rcv_ack receives even while holding the
        deliverable message — the deliverable can be overwritten forever."""
        program = build_standard_protocol(PARAMS, bounded_loss(1))
        broken = _replace_statement(
            program,
            "rcv_ack",
            guard=lnot(var("zp").eq(const("never-this-value"))),  # always on
        )
        report = check_spec(broken, PARAMS)
        assert not report.liveness_all

    def test_wrong_delivery_index_breaks_safety(self):
        """Delivering without matching the expected index corrupts w ⊑ x."""
        program = build_standard_protocol(SeqTransParams(length=2), bounded_loss(1))
        deliver = program.statement("rcv_deliver_a")
        # Drop the zp = (j, α) conjunct: deliver 'a' whenever any message
        # for any index is held.
        broken = _replace_statement(
            program,
            "rcv_deliver_a",
            guard=(var("j") < const(2))
            & (Length(var("w")) < const(2))
            & (var("zp").ne(const(BOT))),
        )
        report = check_spec(broken, SeqTransParams(length=2))
        assert not report.safety_holds

    def test_premature_advance_strands_element(self):
        """Sender advancing without the ack races past undelivered data."""
        program = build_standard_protocol(SeqTransParams(length=2), bounded_loss(1))
        broken = _replace_statement(
            program,
            "snd_next",
            guard=var("i") < const(1),  # advance whenever possible
        )
        report = check_spec(broken, SeqTransParams(length=2))
        # Safety still holds (delivery remains guarded) but progress dies:
        # the receiver may wait forever for an element no longer sent.
        assert report.safety_holds
        assert not report.liveness_all


class TestRefuterWitnessQuality:
    def test_witness_traces_to_initial_state(self):
        """The refutation's start state is reachable and satisfies p."""
        program = build_standard_protocol(PARAMS, bounded_loss(1))
        broken = _replace_statement(
            program,
            "lose_data",
            targets=("cs",),
            exprs=(const(BOT),),
            guard=var("cs").ne(const(BOT)),
        )
        space = broken.space
        refutation = refute_leads_to(
            broken, w_length_eq(space, 0), w_length_gt(space, 0)
        )
        assert refutation is not None
        from repro.transformers import strongest_invariant

        si = strongest_invariant(broken)
        assert si.holds_at(refutation.start)
        assert w_length_eq(space, 0).holds_at(refutation.start)
        # Every trap state still has the element undelivered.
        for i in refutation.trap:
            assert w_length_eq(space, 0).holds_at(i)
