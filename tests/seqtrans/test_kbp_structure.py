"""Structure of the Figure-3 knowledge-based protocol builder."""

import pytest

from repro.seqtrans import (
    RELIABLE,
    SeqTransParams,
    build_kbp_protocol,
    build_standard_protocol,
    k_r_any,
    k_r_value,
    k_s_k_r,
)
from repro.unity import Knowledge

PARAMS = SeqTransParams(length=2)


@pytest.fixture(scope="module")
def kbp():
    return build_kbp_protocol(PARAMS, RELIABLE)


class TestKnowledgeTermStructure:
    def test_is_knowledge_based(self, kbp):
        assert kbp.is_knowledge_based()

    def test_terms_are_per_index_and_symbol(self, kbp):
        terms = kbp.knowledge_terms()
        for k in range(PARAMS.length):
            for alpha in PARAMS.alphabet:
                assert k_r_value(k, alpha) in terms
            assert k_s_k_r(PARAMS, k) in terms

    def test_nested_terms_inside_sender_guard(self, kbp):
        """K_S K_R nests: the sender's term contains the receiver's."""
        outer = k_s_k_r(PARAMS, 0)
        inner_terms = outer.formula.knowledge_terms()
        assert k_r_value(0, "a") in inner_terms
        assert all(isinstance(t, Knowledge) for t in inner_terms)

    def test_term_count(self, kbp):
        # L·|A| receiver terms + L sender terms.
        expected = PARAMS.length * len(PARAMS.alphabet) + PARAMS.length
        assert len(kbp.knowledge_terms()) == expected

    def test_k_r_any_is_disjunction_expression(self):
        expr = k_r_any(PARAMS, 1)
        assert expr.knowledge_terms() == {
            k_r_value(1, "a"),
            k_r_value(1, "b"),
        }


class TestSharedShape:
    def test_same_space_as_standard(self, kbp):
        standard = build_standard_protocol(PARAMS, RELIABLE)
        assert kbp.space == standard.space
        assert kbp.init == standard.init

    def test_same_statement_names(self, kbp):
        standard = build_standard_protocol(PARAMS, RELIABLE)
        assert {s.name for s in kbp.statements} == {
            s.name for s in standard.statements
        }

    def test_same_processes(self, kbp):
        standard = build_standard_protocol(PARAMS, RELIABLE)
        for name, process in standard.processes.items():
            assert kbp.process(name).variables == process.variables

    def test_assignments_identical(self, kbp):
        """Only guards differ between Figure 3 and Figure 4."""
        standard = build_standard_protocol(PARAMS, RELIABLE)
        for stmt in standard.statements:
            counterpart = kbp.statement(stmt.name)
            assert counterpart.targets == stmt.targets
            assert counterpart.exprs == stmt.exprs

    def test_executing_kbp_requires_resolution(self, kbp):
        from repro.unity import EvalError

        with pytest.raises(EvalError):
            kbp.successor_array(kbp.statement("snd_data"))
