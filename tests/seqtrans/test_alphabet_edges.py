"""Alphabet-size edge cases — the paper's §6.3 "A has at least two elements".

Figure 4 instantiates the knowledge-based protocol "provided that there is
no a priori information about x other than A, **and A has at least two
elements**".  A singleton alphabet is implicit a priori information about
every element, so the instantiation must fail exactly the way §6.4's
explicit a priori information makes it fail — while a three-symbol
alphabet behaves like the two-symbol one.
"""

import pytest

from repro.seqtrans import (
    RELIABLE,
    SeqTransParams,
    bounded_loss,
    build_standard_protocol,
    check_instantiation,
    check_spec,
)


class TestSingletonAlphabet:
    PARAMS = SeqTransParams(alphabet=("a",), length=1)

    def test_protocol_still_correct(self):
        program = build_standard_protocol(self.PARAMS, bounded_loss(1))
        assert check_spec(program, self.PARAMS).satisfied

    def test_instantiation_fails(self):
        """|A| = 1 ⇒ everyone knows every x_k from the start ⇒ the guards
        (50)/(51) are strictly stronger than real knowledge."""
        report = check_instantiation(self.PARAMS, RELIABLE)
        assert report.sufficient
        assert not report.instantiates

    def test_receiver_knows_everything_initially(self):
        from repro.core import KnowledgeOperator
        from repro.seqtrans.standard import fact_x_k
        from repro.transformers import strongest_invariant

        program = build_standard_protocol(self.PARAMS, RELIABLE)
        si = strongest_invariant(program)
        operator = KnowledgeOperator.of_program(program, si)
        fact = fact_x_k(program.space, 0, "a")
        assert si.entails(operator.knows("Receiver", fact))

    def test_solved_kbp_sends_no_data(self):
        from repro.seqtrans import solve_kbp
        from repro.statespace import BOT

        solution = solve_kbp(self.PARAMS, RELIABLE)
        assert solution is not None
        for state in solution.si.states():
            assert state["cs"] is BOT


class TestThreeSymbolAlphabet:
    PARAMS = SeqTransParams(alphabet=("a", "b", "c"), length=1)

    def test_spec_satisfied(self):
        program = build_standard_protocol(self.PARAMS, bounded_loss(1))
        assert check_spec(program, self.PARAMS).satisfied

    def test_instantiation_holds(self):
        report = check_instantiation(self.PARAMS, RELIABLE)
        assert report.instantiates

    def test_deliver_family_scales(self):
        program = build_standard_protocol(self.PARAMS, RELIABLE)
        deliver_names = {
            s.name for s in program.statements if s.name.startswith("rcv_deliver")
        }
        assert deliver_names == {
            "rcv_deliver_a",
            "rcv_deliver_b",
            "rcv_deliver_c",
        }

    def test_proofs_replay(self):
        from repro.seqtrans import prove_all_standard, prove_liveness

        program = build_standard_protocol(self.PARAMS, RELIABLE)
        assert prove_all_standard(program, self.PARAMS).total_steps() > 0
        assert prove_liveness(program, self.PARAMS).total_steps() > 0
