"""Channel models: variables, statements, budgets."""

import pytest

from repro.seqtrans import LOSSY, RELIABLE, ChannelKind, ChannelSpec, bounded_loss
from repro.statespace import BOT, BoolDomain, IntRangeDomain, TupleDomain


class TestSpecValidation:
    def test_bounded_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            ChannelSpec(ChannelKind.BOUNDED_LOSS, budget=-1)

    def test_presets(self):
        assert RELIABLE.kind is ChannelKind.RELIABLE
        assert LOSSY.kind is ChannelKind.LOSSY
        assert bounded_loss(2).budget == 2

    def test_zero_budget_degenerates_to_reliable(self):
        """budget=0 permits zero losses: structurally a reliable channel."""
        zero = bounded_loss(0)
        assert zero.effective_kind is ChannelKind.RELIABLE
        assert zero.environment_statements() == []
        assert zero.initial_assignment() == RELIABLE.initial_assignment()
        variables = zero.slot_variables(BoolDomain(), BoolDomain())
        assert [v.name for v in variables] == ["cs", "cr"]
        # Receive fragments must not touch budget variables that don't exist.
        assert set(zero.receive_data_updates()) == {"zp"}
        assert set(zero.receive_ack_updates()) == {"z"}

    def test_positive_budget_still_bounded(self):
        assert bounded_loss(1).effective_kind is ChannelKind.BOUNDED_LOSS


class TestStateContribution:
    def test_reliable_variables(self):
        variables = RELIABLE.slot_variables(BoolDomain(), IntRangeDomain(0, 1))
        assert [v.name for v in variables] == ["cs", "cr"]

    def test_bounded_adds_budgets(self):
        variables = bounded_loss(3).slot_variables(BoolDomain(), BoolDomain())
        assert [v.name for v in variables] == ["cs", "cr", "bs", "br"]
        assert len(variables[2].domain) == 4  # 0..3

    def test_initial_assignment(self):
        init = bounded_loss(2).initial_assignment()
        assert init == {"cs": BOT, "cr": BOT, "bs": 2, "br": 2}
        assert RELIABLE.initial_assignment() == {"cs": BOT, "cr": BOT}


class TestStatements:
    def test_reliable_has_no_environment(self):
        assert RELIABLE.environment_statements() == []

    def test_lossy_loses_unconditionally(self):
        statements = LOSSY.environment_statements()
        assert {s.name for s in statements} == {"lose_data", "lose_ack"}
        lose = statements[0]
        out = lose.apply({"cs": (0, "a"), "cr": BOT})
        assert out["cs"] is BOT

    def test_bounded_loss_meters_budget(self):
        statements = bounded_loss(1).environment_statements()
        lose = next(s for s in statements if s.name == "lose_data")
        charged = lose.apply({"cs": (0, "a"), "bs": 1, "cr": BOT, "br": 1})
        assert charged["cs"] is BOT and charged["bs"] == 0
        # Exhausted budget: the guard fails, losing becomes a skip.
        blocked = lose.apply({"cs": (0, "a"), "bs": 0, "cr": BOT, "br": 1})
        assert blocked["cs"] == (0, "a")

    def test_receive_refills_budget(self):
        updates = bounded_loss(2).receive_data_updates()
        assert set(updates) == {"zp", "bs"}
        # Successful receive resets bs; empty slot leaves it alone.
        probe = {"cs": (1, "b"), "bs": 0}
        assert updates["bs"].eval(probe) == 2
        probe_empty = {"cs": BOT, "bs": 1}
        assert updates["bs"].eval(probe_empty) == 1

    def test_budget_replenish_cycle(self):
        """Lose to exhaustion, receive successfully, budget returns to full.

        Exercises the replenish rule through the actual statement/update
        machinery rather than by inspecting expressions: the bounded-loss
        invariant is "at most ``budget`` consecutive losses between
        successful receives", and this walks one full cycle of it.
        """
        spec = bounded_loss(2)
        lose = next(
            s for s in spec.environment_statements() if s.name == "lose_data"
        )
        state = {"cs": (0, "a"), "bs": 2, "cr": BOT, "br": 2}
        state = lose.apply(state)  # 1st loss
        assert state["bs"] == 1 and state["cs"] is BOT
        state["cs"] = (0, "a")  # sender retransmits
        state = lose.apply(state)  # 2nd loss — budget now exhausted
        assert state["bs"] == 0
        state["cs"] = (0, "a")
        blocked = lose.apply(state)  # 3rd loss is a skip
        assert blocked["cs"] == (0, "a") and blocked["bs"] == 0
        # A successful (non-⊥) receive replenishes the budget in full.
        updates = spec.receive_data_updates()
        assert updates["bs"].eval(blocked) == 2
        # An empty-slot receive must NOT replenish: only a delivered
        # message resets the consecutive-loss counter.
        empty = dict(blocked, cs=BOT)
        assert updates["bs"].eval(empty) == 0

    def test_receive_target_names(self):
        assert "za" in bounded_loss(1).receive_ack_updates(target="za")
        assert "zb" in RELIABLE.receive_data_updates(target="zb")
