"""The common-knowledge hierarchy on the transmission protocols."""

import pytest

from repro.core import KnowledgeOperator
from repro.seqtrans import (
    RELIABLE,
    SeqTransParams,
    bounded_loss,
    build_standard_protocol,
    safety_predicate,
)
from repro.seqtrans.common_knowledge import knowledge_hierarchy
from repro.seqtrans.standard import fact_x_k
from repro.transformers import strongest_invariant

PARAMS = SeqTransParams(length=1)


@pytest.fixture(scope="module")
def reliable_instance():
    program = build_standard_protocol(PARAMS, RELIABLE)
    si = strongest_invariant(program)
    return program, si, KnowledgeOperator.of_program(program, si)


class TestHierarchy:
    def test_receiver_learns_but_common_never(self, reliable_instance):
        program, si, operator = reliable_instance
        hierarchy = knowledge_hierarchy(program, PARAMS)
        assert hierarchy.individual[1] > 0
        assert hierarchy.common == 0

    def test_levels_strictly_shrink_before_empty(self, reliable_instance):
        program, _, _ = reliable_instance
        hierarchy = knowledge_hierarchy(program, PARAMS)
        assert hierarchy.e_levels[0] > hierarchy.e_levels[1] >= hierarchy.common

    def test_impossibility_holds_on_all_channels(self):
        for channel in (RELIABLE, bounded_loss(1)):
            program = build_standard_protocol(PARAMS, channel)
            hierarchy = knowledge_hierarchy(program, PARAMS)
            assert not hierarchy.common_knowledge_attained

    def test_e_level_contains_next(self, reliable_instance):
        """E^{n+1} ⊆ E^n as predicates, not just counts."""
        program, si, operator = reliable_instance
        fact = fact_x_k(program.space, 0, "a")
        group = ["Sender", "Receiver"]
        level = operator.everyone_knows(group, fact)
        for _ in range(3):
            next_level = operator.everyone_knows(group, fact & level)
            assert (next_level & si).entails(level & si)
            level = next_level


class TestCommonKnowledgeOfInvariants:
    def test_invariants_are_common_knowledge(self, reliable_instance):
        program, si, operator = reliable_instance
        safety = safety_predicate(program.space)
        common = operator.common_knowledge(["Sender", "Receiver"], safety)
        assert si.entails(common)

    def test_common_knowledge_is_fixpoint(self, reliable_instance):
        program, si, operator = reliable_instance
        fact = fact_x_k(program.space, 0, "a")
        group = ["Sender", "Receiver"]
        common = operator.common_knowledge(group, fact)
        assert common == operator.everyone_knows(group, fact & common)
