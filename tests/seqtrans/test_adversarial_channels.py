"""Hostile channel disciplines and process crash/restart faults."""

import pytest

from repro.core import KnowledgeOperator
from repro.seqtrans import (
    DUPLICATING_REORDER,
    RELIABLE,
    ChannelKind,
    CrashSpec,
    SeqTransParams,
    bounded_loss,
    build_kbp_protocol,
    build_standard_protocol,
    check_spec,
    corrupting,
    corruption_successors,
)
from repro.statespace import BOT, EnumDomain, IntRangeDomain, TupleDomain
from repro.transformers import strongest_invariant

PARAMS = SeqTransParams(length=1, alphabet=("a", "b"))


class TestCorruptionSuccessors:
    def test_tuples_cycle_within_prefix_groups(self):
        succ = corruption_successors([(0, "a"), (0, "b"), (1, "a"), (1, "b")])
        # Corruption keeps the sequence number, changes the symbol.
        assert succ[(0, "a")] == (0, "b") and succ[(0, "b")] == (0, "a")
        assert succ[(1, "a")] == (1, "b") and succ[(1, "b")] == (1, "a")

    def test_scalars_cycle_over_all_values(self):
        succ = corruption_successors([0, 1, 2])
        assert succ == {0: 1, 1: 2, 2: 0}

    def test_singleton_groups_have_no_wrong_value(self):
        assert corruption_successors([(0, "a"), (1, "a")]) == {}
        assert corruption_successors([7]) == {}


class TestCorruptingChannel:
    def test_budget_zero_degenerates_to_reliable(self):
        spec = corrupting(0)
        assert spec.effective_kind is ChannelKind.RELIABLE
        assert spec.slot_variables(
            TupleDomain(IntRangeDomain(0, 0), EnumDomain("A", "ab")),
            IntRangeDomain(0, 1),
        ) == RELIABLE.slot_variables(
            TupleDomain(IntRangeDomain(0, 0), EnumDomain("A", "ab")),
            IntRangeDomain(0, 1),
        )
        assert spec.environment_statements() == []

    def test_statements_are_budgeted(self):
        data = TupleDomain(IntRangeDomain(0, 0), EnumDomain("A", "ab"))
        ack = IntRangeDomain(0, 1)
        names = [s.name for s in corrupting(2).environment_statements(data, ack)]
        assert names == ["corrupt_data", "corrupt_ack"]

    def test_corruption_needs_domains(self):
        with pytest.raises(ValueError, match="domains"):
            corrupting(1).environment_statements()

    def test_undetectable_corruption_breaks_safety(self):
        # The one attack the paper's channel assumption quietly excludes:
        # a *legal* wrong value defeats (St-1)/(St-2)-style safety.
        program = build_standard_protocol(PARAMS, corrupting(1))
        report = check_spec(program, PARAMS)
        assert not report.safety_holds

    def test_reliable_and_bounded_loss_keep_safety(self):
        for channel in (RELIABLE, bounded_loss(1)):
            report = check_spec(build_standard_protocol(PARAMS, channel), PARAMS)
            assert report.safety_holds


class TestDuplicatingReorderChannel:
    def test_two_data_slots(self):
        data = TupleDomain(IntRangeDomain(0, 0), EnumDomain("A", "ab"))
        names = [
            v.name for v in DUPLICATING_REORDER.slot_variables(data, IntRangeDomain(0, 1))
        ]
        assert names == ["cs", "cr", "cs2"]
        assert DUPLICATING_REORDER.initial_assignment()["cs2"] is BOT

    def test_transmit_pushes_previous_message(self):
        updates = DUPLICATING_REORDER.transmit_data_updates(object())
        assert set(updates) == {"cs", "cs2"}

    def test_swap_statement_only(self):
        names = [s.name for s in DUPLICATING_REORDER.environment_statements()]
        assert names == ["swap_data"]

    def test_safety_survives_liveness_refutable(self):
        # Sequence numbers absorb duplication/reordering (safety), but a
        # demonic swap schedule hides the fresh message forever (liveness).
        program = build_standard_protocol(PARAMS, DUPLICATING_REORDER)
        report = check_spec(program, PARAMS)
        assert report.safety_holds
        assert not all(report.liveness_holds)


class TestCrashSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CrashSpec(budget=-1)
        with pytest.raises(ValueError):
            CrashSpec(processes=())
        with pytest.raises(ValueError, match="reset values"):
            CrashSpec(processes=("Oracle",)).crash_statements()

    def test_budget_zero_is_inert(self):
        inert = CrashSpec(budget=0)
        assert inert.crash_variables() == []
        assert inert.initial_assignment() == {}
        assert inert.crash_statements() == []
        with_crash = build_standard_protocol(PARAMS, RELIABLE, crash=inert)
        without = build_standard_protocol(PARAMS, RELIABLE)
        assert [s.name for s in with_crash.statements] == [
            s.name for s in without.statements
        ]

    def test_crash_statement_resets_locals_and_burns_fuel(self):
        program = build_standard_protocol(
            PARAMS, RELIABLE, crash=CrashSpec(processes=("Receiver",), budget=1)
        )
        names = [s.name for s in program.statements]
        assert "crash_receiver" in names
        crash = program.statements[names.index("crash_receiver")]
        assert set(crash.targets) == {"w", "j", "zp", "cb"}

    def test_receiver_crash_reliable_recovers(self):
        # The data slot persists across the crash, so the receiver re-reads
        # it and relearns x_0: both safety and liveness survive.
        program = build_standard_protocol(
            PARAMS, RELIABLE, crash=CrashSpec(processes=("Receiver",), budget=1)
        )
        report = check_spec(program, PARAMS)
        assert report.safety_holds and all(report.liveness_holds)

    def test_receiver_crash_bounded_loss_can_deadlock(self):
        # Loss can erase the in-flight copy *and* the sender can be left
        # disabled on a stale ack: recovery is no longer guaranteed.
        program = build_standard_protocol(
            PARAMS, bounded_loss(1), crash=CrashSpec(processes=("Receiver",), budget=1)
        )
        report = check_spec(program, PARAMS)
        assert report.safety_holds
        assert not all(report.liveness_holds)

    def test_sender_crash_bounded_loss_recovers(self):
        program = build_standard_protocol(
            PARAMS, bounded_loss(1), crash=CrashSpec(processes=("Sender",), budget=1)
        )
        report = check_spec(program, PARAMS)
        assert report.safety_holds and all(report.liveness_holds)

    def test_crashed_receiver_loses_knowledge(self):
        # Eqs. (23)/(24): knowledge is invariant, so with a crash statement
        # in the program K_R(x_0 = α) cannot hold at any state a crash can
        # still erase — the freshly-crashed receiver knows nothing about x.
        program = build_standard_protocol(
            PARAMS, RELIABLE, crash=CrashSpec(processes=("Receiver",), budget=1)
        )
        si = strongest_invariant(program)
        operator = KnowledgeOperator.of_program(program, si)
        space = program.space
        from repro.predicates import Predicate

        for alpha in PARAMS.alphabet:
            fact = Predicate.from_callable(space, lambda s, a=alpha: s["x"][0] == a)
            knows_fact = operator.knows("Receiver", fact)
            crashed = Predicate.from_callable(
                space,
                lambda s: s["w"] == () and s["j"] == 0 and s["zp"] is BOT,
            )
            # No crashed-receiver state in SI satisfies K_R(x_0 = α)
            # unless the evidence sits in the persistent channel slot.
            stale = (si & crashed & knows_fact) & Predicate.from_callable(
                space, lambda s: s["cs"] is BOT
            )
            assert stale.is_false()

    def test_kbp_protocol_accepts_crash(self):
        program = build_kbp_protocol(
            PARAMS, RELIABLE, crash=CrashSpec(processes=("Receiver",), budget=1)
        )
        assert "crash_receiver" in [s.name for s in program.statements]
        assert "cb" in [v.name for v in program.space.variables]
        assert program.name.endswith("crash-receiver]")
