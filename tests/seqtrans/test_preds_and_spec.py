"""The named predicates and spec helpers of the seqtrans case study."""

import pytest

from repro.predicates import Predicate
from repro.seqtrans import (
    SeqTransParams,
    bounded_loss,
    build_standard_protocol,
    delivered_all,
)
from repro.seqtrans import preds
from repro.seqtrans.spec import (
    j_eq,
    j_gt,
    safety_predicate,
    w_length_eq,
    w_length_gt,
)
from repro.statespace import BOT
from repro.transformers import strongest_invariant

PARAMS = SeqTransParams(length=2)


@pytest.fixture(scope="module")
def instance():
    from repro.seqtrans import RELIABLE

    program = build_standard_protocol(PARAMS, RELIABLE)
    return program, strongest_invariant(program)


class TestCounterPredicates:
    def test_i_family_partition(self, instance):
        program, _ = instance
        space = program.space
        for k in (0, 1):
            assert (preds.i_eq(space, k) | preds.i_gt(space, k)) == preds.i_ge(
                space, k
            )
            assert (preds.i_eq(space, k) & preds.i_gt(space, k)).is_false()

    def test_j_family(self, instance):
        program, _ = instance
        space = program.space
        union = Predicate.false(space)
        for k in range(PARAMS.length + 1):
            union = union | j_eq(space, k)
        assert union.is_everywhere()
        assert j_gt(space, 0) == (j_eq(space, 1) | j_eq(space, 2))

    def test_z_bot_excluded(self, instance):
        program, _ = instance
        space = program.space
        z_any = preds.z_ge(space, 0)
        bot_state = next(
            s for s in space.states() if s["z"] is BOT
        )
        assert not z_any.holds_at(bot_state)

    def test_memoization_returns_identical_objects(self, instance):
        program, _ = instance
        space = program.space
        assert preds.i_eq(space, 0) is preds.i_eq(space, 0)
        assert preds.w_prefix_x(space) is preds.w_prefix_x(space)


class TestQuantifiedKnowledgePredicates:
    def test_eq37_shape(self, instance):
        """(37)'s predicate: trivially true at j = 0, demanding at j = 2."""
        program, si = instance
        space = program.space
        p37 = preds.all_known_below_j(space, PARAMS)
        assert (j_eq(space, 0)).entails(p37)
        # The paper proves (37) is invariant — check it here semantically.
        assert si.entails(p37)

    def test_eq38_shape(self, instance):
        program, si = instance
        space = program.space
        p38 = preds.all_acked_below_i(space, PARAMS)
        assert si.entails(p38)

    def test_all_acked_below_constant_bound(self, instance):
        program, _ = instance
        space = program.space
        assert preds.all_acked_below(space, 0).is_everywhere()
        from repro.seqtrans import proposed_k_s_k_r

        assert preds.all_acked_below(space, 1) == proposed_k_s_k_r(space, 0)


class TestSpecHelpers:
    def test_w_length_family(self, instance):
        program, _ = instance
        space = program.space
        assert (w_length_eq(space, 0) & w_length_gt(space, 0)).is_false()
        union = w_length_eq(space, 0) | w_length_gt(space, 0)
        assert union.is_everywhere()

    def test_delivered_all_is_strongest_goal(self, instance):
        program, _ = instance
        space = program.space
        done = delivered_all(space, PARAMS)
        assert done.entails(w_length_eq(space, PARAMS.length))
        assert done.entails(safety_predicate(space))

    def test_safety_counts(self, instance):
        """w ⊑ x fails exactly when some delivered element mismatches."""
        program, _ = instance
        space = program.space
        safe = safety_predicate(space)
        for state in space.states():
            expected = tuple(state["x"][: len(state["w"])]) == tuple(state["w"])
            if safe.holds_at(state) != expected:
                pytest.fail(f"mismatch at {dict(state)}")
            break  # full scan is covered elsewhere; spot-check the first
