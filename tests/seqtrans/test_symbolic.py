"""The factored sequence-transmission model at symbolic (2^40-state) scale.

Ground truth for the symbolic backend: the factored Figure-4 model at
``L = 10`` spans more than 2^40 states — every explicit route refuses it
with the size-guard escape hatches — yet ``solve_si`` completes the
standard-program ``sst`` route on ROBDD handles and the resulting
certificate replays.  At small ``L`` the same model runs on both the int
and robdd backends and the entire chain must be bit-identical.
"""

import math

import pytest

from repro.core import solve_si
from repro.predicates import Predicate, limits, using_backend
from repro.predicates.limits import ExplicitStateLimitError
from repro.seqtrans import (
    SeqTransParams,
    build_symbolic_protocol,
    delivered_all_predicate,
    symbolic_model_key,
    symbolic_safety_predicate,
)
from repro.transformers import sst


@pytest.fixture(scope="module")
def big_params():
    return SeqTransParams(length=10)


class TestSmallInstancesDifferential:
    """Where both backends run, the factored model must agree exactly."""

    @pytest.mark.parametrize("length", [1, 2])
    def test_sst_chain_bit_identical_across_backends(self, length):
        params = SeqTransParams(length=length)
        results = {}
        for backend in ("int", "robdd"):
            with using_backend(backend):
                program = build_symbolic_protocol(params)
                result = sst(program, program.init)
                results[backend] = (
                    result.predicate.fingerprint(),
                    result.iterations,
                    tuple(q.fingerprint() for q in result.chain),
                )
        assert results["int"] == results["robdd"]

    def test_protocol_delivers_and_stays_safe(self):
        params = SeqTransParams(length=2)
        program = build_symbolic_protocol(params)
        reach = sst(program, program.init).predicate
        assert reach.entails(symbolic_safety_predicate(program, params))
        done = delivered_all_predicate(program, params)
        assert not (reach & done).is_false()
        # Per initial sequence x there is exactly one completed
        # configuration (w = x, counters pinned), modulo the final ack
        # still being in flight (z ∈ {⊥, L-1, L}) — delivery is exact,
        # never a guess.
        completed = reach & done
        per_x = completed.count() / len(list(params.x_values()))
        assert per_x == int(per_x)  # symmetric across sequences

    def test_apriori_information_restricts_init(self):
        params = SeqTransParams(length=2, apriori={0: "a"})
        program = build_symbolic_protocol(params)
        free = build_symbolic_protocol(SeqTransParams(length=2))
        assert program.init.count() * 2 == free.init.count()

    def test_solve_si_takes_the_standard_route(self):
        params = SeqTransParams(length=1)
        program = build_symbolic_protocol(params)
        report = solve_si(program)
        assert report.candidates_checked == 1
        assert report.unique
        assert report.strongest() == sst(program, program.init).predicate


class TestSymbolicScale:
    """L = 10: past 2^40 states, far beyond every explicit limit."""

    @pytest.fixture(autouse=True)
    def _auto_backend(self):
        # The CI matrix forces REPRO_PREDICATE_BACKEND=int/numpy; "auto"
        # restores the size-aware policy so the 2^40-state build routes
        # to robdd (the explicit-refusal test pins "int" explicitly).
        with using_backend("auto"):
            yield

    def test_space_exceeds_forty_bits(self, big_params):
        program = build_symbolic_protocol(big_params)
        bits = math.log2(program.space.size)
        assert bits >= 40
        assert program.space.size > limits.get_limit("explicit")

    def test_explicit_backend_is_refused_with_escape_hatches(self, big_params):
        with using_backend("int"):
            with pytest.raises(ExplicitStateLimitError) as exc_info:
                build_symbolic_protocol(big_params)
        message = str(exc_info.value)
        assert "robdd" in message
        assert "REPRO_MAX_EXPLICIT_STATES" in message

    def test_solve_completes_on_handles(self, big_params):
        program = build_symbolic_protocol(big_params)
        report = solve_si(program)
        assert report.unique
        si = report.strongest()
        assert si.entails(symbolic_safety_predicate(program, big_params))
        assert not (si & delivered_all_predicate(program, big_params)).is_false()
        # The chain ran without ever materializing a mask: the predicate
        # is handle-bound to the symbolic backend.
        assert "backend=robdd" in repr(si)

    def test_certificate_emits_and_replays(self, tmp_path, big_params):
        from repro.certificates.emit import emit_all
        from repro.certificates.replay import replay_path

        paths = emit_all(tmp_path, only=["symbolic-fixpoint"])
        assert len(paths) == 2
        verdicts = {}
        for path in paths:
            outcome = replay_path(path)
            assert outcome.model == symbolic_model_key(big_params)
            verdicts[outcome.kind] = outcome.verdict
        assert verdicts["fixpoint"] == "si-fixpoint-verified"
        assert verdicts["invariant"] == "invariant-holds"

    def test_symbolic_predicates_encode_structurally(self, big_params):
        from repro.certificates.canonical import (
            CertificateError,
            decode_predicate,
            encode_predicate,
        )

        program = build_symbolic_protocol(big_params)
        encoded = encode_predicate(program.init)
        assert "robdd" in encoded and "bits" not in encoded
        decoded = decode_predicate(encoded, program.space)
        assert decoded == program.init
        # An explicit bitmask encoding is structurally impossible at this
        # scale and must be rejected, not silently reinterpreted.
        with pytest.raises(CertificateError, match="robdd"):
            decode_predicate(
                {"size": program.space.size, "bits": "ff"}, program.space
            )

    def test_replay_rejects_a_tampered_symbolic_chain(self, tmp_path, big_params):
        import json

        from repro.certificates.canonical import CertificateError, payload_digest
        from repro.certificates.replay import replay_path

        from repro.certificates.emit import emit_all

        paths = emit_all(tmp_path, only=["symbolic-fixpoint"])
        si_path = next(p for p in paths if p.name.endswith("-si.cert.json"))
        doc = json.loads(si_path.read_text())
        # Drop an interior chain link and re-sign the envelope: the digest
        # check passes, the semantic replay must still refuse.
        doc["payload"]["chain"] = (
            doc["payload"]["chain"][:3] + doc["payload"]["chain"][4:]
        )
        doc["digest"] = payload_digest(doc["payload"])
        si_path.write_text(json.dumps(doc))
        with pytest.raises(CertificateError):
            replay_path(si_path)
