"""Knowledge-based mutual exclusion: multiplicity of eq.-(25) solutions."""

import pytest

from repro.core import is_solution, resolve_at, solve_si
from repro.predicates import Predicate, var_true
from repro.proofs import holds_leads_to
from repro.puzzles import (
    analyze_mutex,
    mutual_exclusion,
    naive_mutex,
    token_mutex,
)


class TestNaiveMutex:
    def test_two_solutions(self):
        report = solve_si(naive_mutex())
        assert len(report.solutions) == 2

    def test_solutions_are_asymmetric_mirror_images(self):
        program = naive_mutex()
        report = solve_si(program)
        space = program.space
        cs0_ever = [
            not (solution & var_true(space, "cs0")).is_false()
            for solution in report.solutions
        ]
        cs1_ever = [
            not (solution & var_true(space, "cs1")).is_false()
            for solution in report.solutions
        ]
        # Exactly one solution lets each process in.
        assert sorted(cs0_ever) == [False, True]
        assert sorted(cs1_ever) == [False, True]
        assert cs0_ever != cs1_ever

    def test_mutex_in_every_solution(self):
        analysis = analyze_mutex(naive_mutex())
        assert analysis.mutex_in_all

    def test_liveness_guaranteed_for_nobody(self):
        """The paper's "valid for any solution" reading: only properties
        holding in every solution are guaranteed — progress is not."""
        analysis = analyze_mutex(naive_mutex())
        assert analysis.liveness == ((False, True), (True, False)) or (
            analysis.liveness == ((True, False), (False, True))
        )
        assert analysis.liveness_guaranteed == (False, False)

    def test_each_solution_solves_25(self):
        program = naive_mutex()
        for solution in solve_si(program).solutions:
            assert is_solution(program, solution)


class TestTokenMutex:
    def test_unique_solution(self):
        report = solve_si(token_mutex())
        assert report.unique

    def test_mutex_and_both_liveness(self):
        analysis = analyze_mutex(token_mutex())
        assert analysis.mutex_in_all
        assert analysis.liveness_guaranteed == (True, True)

    def test_alternation(self):
        """The token alternates: after P0's exit, P1 enters before P0 again."""
        program = token_mutex()
        solution = solve_si(program).strongest()
        resolved = resolve_at(program, solution)
        space = program.space
        cs0 = var_true(space, "cs0")
        cs1 = var_true(space, "cs1")
        turn = var_true(space, "turn")
        # With the token handed over (turn ∧ ¬cs1), P1 enters before the
        # token returns: (turn ∧ ¬cs0 ∧ ¬cs1) ↦ cs1.
        handover = turn & ~cs0 & ~cs1
        assert holds_leads_to(resolved, handover, cs1, solution)

    def test_mutual_exclusion_predicate(self):
        program = token_mutex()
        both_in = ~mutual_exclusion(program)
        solution = solve_si(program).strongest()
        assert (solution & both_in).is_false()
