"""Muddy children & cheating husbands: announcement dynamics = SI strengthening."""

import itertools

import pytest

from repro.predicates import Predicate, var_true
from repro.puzzles import (
    AnnouncementSystem,
    analyze_cheating_husbands,
    analyze_muddy_children,
    build_cheating_husbands,
    build_muddy_children,
    cheating_husbands_theorem,
    muddy_children_theorem,
    nobody_knows_whether,
)
from repro.puzzles.muddy_children import child, muddy_var


class TestAnnouncementSystem:
    def test_announcement_shrinks_worlds(self):
        system = build_muddy_children(3)
        before = system.worlds()
        questions = {
            child(i): var_true(system.space, muddy_var(i)) for i in range(3)
        }
        silence = nobody_knows_whether(system, questions)
        after = system.announce(silence).worlds()
        assert after < before

    def test_announcements_only_add_knowledge(self):
        """Eq. (20) in action: strengthening SI is anti-monotone for K."""
        system = build_muddy_children(3)
        fact = var_true(system.space, muddy_var(0))
        questions = {
            child(i): var_true(system.space, muddy_var(i)) for i in range(3)
        }
        before = system.knows(child(1), fact)
        announced = system.announce(nobody_knows_whether(system, questions))
        after = announced.knows(child(1), fact)
        assert (before & announced.possible).entails(after)

    def test_common_knowledge_of_announced_fact(self):
        system = build_muddy_children(2)
        # "At least one muddy" is common knowledge from the start.
        ck = system.common_knowledge(
            [child(0), child(1)], system.possible
        )
        assert (ck & system.possible) == system.possible


class TestMuddyChildren:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_classical_theorem(self, n):
        assert muddy_children_theorem(n)

    def test_single_muddy_child_knows_immediately(self):
        result = analyze_muddy_children((True, False, False))
        assert result.first_round_known(0) == 0

    def test_clean_child_learns_one_round_later(self):
        """After the muddy children step forward, the clean ones know too."""
        result = analyze_muddy_children((True, True, False))
        assert result.first_round_known(0) == 1
        assert result.first_round_known(1) == 1
        assert result.first_round_known(2) == 2

    def test_all_muddy(self):
        result = analyze_muddy_children((True, True, True))
        assert all(result.first_round_known(i) == 2 for i in range(3))

    def test_father_must_tell_the_truth(self):
        with pytest.raises(ValueError):
            analyze_muddy_children((False, False))


class TestCheatingHusbands:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_mdh86_theorem(self, n):
        assert cheating_husbands_theorem(n)

    def test_shootings_on_night_m(self):
        for bits in itertools.product([False, True], repeat=3):
            if not any(bits):
                continue
            schedule = analyze_cheating_husbands(bits)
            m = sum(bits)
            for i, cheats in enumerate(bits):
                assert schedule.shot_on_night[i] == (m if cheats else -1)

    def test_queen_must_tell_the_truth(self):
        with pytest.raises(ValueError):
            analyze_cheating_husbands((False, False, False))

    def test_isomorphic_to_muddy_children_rounds(self):
        """Nights map to rounds: shot night = first-known round + 1."""
        for bits in itertools.product([False, True], repeat=3):
            if not any(bits):
                continue
            schedule = analyze_cheating_husbands(bits)
            muddy = analyze_muddy_children(bits)
            for i, cheats in enumerate(bits):
                if cheats:
                    assert schedule.shot_on_night[i] == muddy.first_round_known(i) + 1
