"""The public-announcement engine underlying the puzzles."""

import pytest

from repro.predicates import Predicate, var_true
from repro.puzzles import (
    AnnouncementSystem,
    build_muddy_children,
    nobody_knows_whether,
    run_rounds,
)
from repro.puzzles.muddy_children import child, muddy_var, questions
from repro.statespace import BoolDomain, space_of


@pytest.fixture
def system():
    return build_muddy_children(3)


class TestAnnouncementSystem:
    def test_create_validates_views(self):
        space = space_of(a=BoolDomain(), b=BoolDomain())
        with pytest.raises(KeyError):
            AnnouncementSystem.create(space, {"P": ["ghost"]}, Predicate.true(space))

    def test_initial_worlds(self, system):
        # 2^3 − 1: "at least one muddy" excludes the all-clean world.
        assert system.worlds() == 7

    def test_announce_is_conjunction(self, system):
        fact = var_true(system.space, muddy_var(0))
        updated = system.announce(fact)
        assert updated.possible == (system.possible & fact)
        # Immutability: the original is untouched.
        assert system.worlds() == 7

    def test_knows_whether_union(self, system):
        fact = var_true(system.space, muddy_var(0))
        kw = system.knows_whether(child(1), fact)
        op = system.operator()
        assert kw == (op.knows(child(1), fact) | op.knows(child(1), ~fact))

    def test_operator_reflects_current_possibility(self, system):
        fact = var_true(system.space, muddy_var(1))
        shrunk = system.announce(fact)
        assert shrunk.operator().si == shrunk.possible


class TestNobodyKnows:
    def test_silence_semantics(self, system):
        qs = questions(system.space, 3)
        silence = nobody_knows_whether(system, qs)
        for i in range(3):
            overlap = silence & system.knows_whether(child(i), qs[child(i)])
            assert overlap.is_false()

    def test_run_rounds_terminates(self, system):
        qs = questions(system.space, 3)
        history, final = run_rounds(system, qs, max_rounds=5)
        assert history  # at least one round recorded
        assert final.worlds() <= system.worlds()

    def test_run_rounds_monotone_shrinkage(self, system):
        qs = questions(system.space, 3)
        _, final = run_rounds(system, qs, max_rounds=2)
        assert final.possible.entails(system.possible)
