"""Tests for the certificate service (repro.service)."""
