"""Connection hardening and client retry: deadlines, line caps, backoff."""

from __future__ import annotations

import json
import socket
import struct
import threading
import time

import pytest

from repro.core.netproto import MAX_LINE_BYTES
from repro.service import client as client_mod
from repro.service.client import ServiceClient, _backoff

from .conftest import ServerHandle


def recv_line(sock: socket.socket, timeout: float = 30.0) -> dict:
    sock.settimeout(timeout)
    chunks = b""
    while not chunks.endswith(b"\n"):
        chunk = sock.recv(4096)
        if not chunk:
            break
        chunks += chunk
    return json.loads(chunks)


# ----------------------------------------------------------------------
# server-side limits
# ----------------------------------------------------------------------


class TestReadDeadline:
    def test_silent_connection_is_cut(self, tmp_path):
        handle = ServerHandle(tmp_path / "cache", tmp_path / "port")
        handle.start(extra_args=["--read-deadline", "1"])
        try:
            with socket.create_connection(("127.0.0.1", handle.port)) as sock:
                start = time.monotonic()
                event = recv_line(sock)  # no request sent at all
                elapsed = time.monotonic() - start
                assert event["event"] == "error"
                assert "no request within" in event["error"]
                assert elapsed < 20
                assert sock.recv(4096) == b""  # and the server hangs up
        finally:
            handle.stop()

    def test_deadline_applies_between_requests(self, tmp_path):
        handle = ServerHandle(tmp_path / "cache", tmp_path / "port")
        handle.start(extra_args=["--read-deadline", "1"])
        try:
            with socket.create_connection(("127.0.0.1", handle.port)) as sock:
                sock.sendall(b'{"op": "ping"}\n')
                assert recv_line(sock)["event"] == "pong"
                event = recv_line(sock)  # then fall silent
                assert event["event"] == "error"
                assert "no request within" in event["error"]
        finally:
            handle.stop()


class TestLineLimit:
    def test_overlong_request_line_is_rejected(self, server):
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(b"x" * (MAX_LINE_BYTES + 4096))
            event = recv_line(sock)
            assert event["event"] == "error"
            assert f"exceeds {MAX_LINE_BYTES}" in event["error"]
            assert sock.recv(4096) == b""

    def test_normal_sized_requests_unaffected(self, server):
        with ServiceClient(port=server.port) as client:
            assert client.ping()["event"] == "pong"


# ----------------------------------------------------------------------
# client retry
# ----------------------------------------------------------------------


def free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestClientRetry:
    def test_backoff_doubles_and_caps(self):
        delays = [_backoff(n, 0.1) for n in range(1, 8)]
        assert delays[:5] == [0.1, 0.2, 0.4, 0.8, 1.6]
        assert all(d == 2.0 for d in delays[5:])

    def test_connect_retries_until_the_server_appears(self):
        port = free_port()
        listener = socket.socket()
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)

        def bind_late():
            time.sleep(0.4)
            listener.bind(("127.0.0.1", port))
            listener.listen(1)

        thread = threading.Thread(target=bind_late)
        thread.start()
        try:
            client = ServiceClient(port=port, retries=10, retry_backoff=0.1)
            client.close()
        finally:
            thread.join()
            listener.close()

    def test_retries_exhaust_to_the_original_error(self):
        with pytest.raises(ConnectionRefusedError):
            ServiceClient(port=free_port(), retries=2, retry_backoff=0.01)

    def test_zero_retries_fails_immediately(self):
        start = time.monotonic()
        with pytest.raises(ConnectionRefusedError):
            ServiceClient(port=free_port(), retries=0, retry_backoff=5.0)
        assert time.monotonic() - start < 2.0

    def test_cli_reissues_after_a_reset(self, capsys):
        """First connection gets an RST mid-request; the CLI reconnects
        and the re-issued ping is served."""
        listener = socket.socket()
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(2)
        port = listener.getsockname()[1]

        def serve():
            first, _ = listener.accept()
            # SO_LINGER 0 + close = RST: the client sees a hard reset,
            # not a clean EOF.
            first.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            first.recv(1024)
            first.close()
            second, _ = listener.accept()
            second.recv(1024)
            second.sendall(b'{"event": "pong", "protocol": "x"}\n')
            second.close()

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            code = client_mod.main(
                [
                    "--port", str(port),
                    "--retries", "3",
                    "--retry-backoff", "0.05",
                    "ping",
                ]
            )
        finally:
            thread.join()
            listener.close()
        assert code == 0
        assert json.loads(capsys.readouterr().out)["event"] == "pong"

    def test_retry_flags_have_defaults(self, server, capsys):
        assert client_mod.main(["--port", str(server.port), "ping"]) == 0
        assert json.loads(capsys.readouterr().out)["event"] == "pong"


# ----------------------------------------------------------------------
# server --workers host:port,... (the full distributed chain)
# ----------------------------------------------------------------------


class TestServerRemoteWorkers:
    def test_solve_fans_out_to_daemons_byte_identically(
        self, tmp_path, spawn_worker
    ):
        from repro.service import QuerySpec, solve_query

        reference = solve_query(
            QuerySpec(model="kbp24-f4", obligation="si-solve")
        )
        addrs = [spawn_worker(f"w{i}")[1] for i in range(2)]
        handle = ServerHandle(tmp_path / "cache", tmp_path / "port")
        handle.start(extra_args=["--workers", ",".join(addrs)])
        try:
            with ServiceClient(port=handle.port) as client:
                result = client.solve("kbp24-f4")
            assert result.text == reference
            assert result.cache == "cold"
        finally:
            handle.stop()
