"""A real server subprocess for the service end-to-end tests.

The fixture hands tests a :class:`ServerHandle` that can kill (SIGKILL —
the crash the journal resume story is about) and restart the server on
the *same* cache directory, which is exactly the kill-and-resume
acceptance scenario.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


class ServerHandle:
    """One certificate server subprocess, restartable on its cache dir."""

    def __init__(self, cache_dir: Path, port_file: Path):
        self.cache_dir = cache_dir
        self.port_file = port_file
        self.proc: subprocess.Popen = None
        self.port: int = None

    def start(self, timeout: float = 30.0, extra_args=()) -> "ServerHandle":
        if self.port_file.exists():
            self.port_file.unlink()
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service.server",
             "--cache-dir", str(self.cache_dir),
             "--port-file", str(self.port_file),
             *extra_args],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.port_file.exists():
                text = self.port_file.read_text(encoding="ascii").strip()
                if text:
                    self.port = int(text)
                    return self
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"server exited with {self.proc.returncode} before listening"
                )
            time.sleep(0.02)
        raise RuntimeError("server did not write its port file in time")

    def kill(self) -> None:
        """SIGKILL — no cleanup handlers run, exactly like a crash."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=10)

    def stop(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.kill()


@pytest.fixture
def server(tmp_path):
    handle = ServerHandle(tmp_path / "cache", tmp_path / "port")
    handle.start()
    yield handle
    handle.stop()
