"""Query specs: cache-key derivation and the cold-path solve."""

from __future__ import annotations

import pytest

from repro.certificates.emit import certify_fig1
from repro.certificates.replay import replay_artifact
from repro.certificates.store import loads
from repro.service import QuerySpec, ServiceError, cache_key, solve_query


class TestQuerySpec:
    def test_from_request_normalizes_flags(self):
        spec = QuerySpec.from_request(
            {"model": "fig1", "obligation": "si-solve", "flags": {"b": 1, "a": 2}}
        )
        assert spec.flags == (("a", 2), ("b", 1))

    def test_obligation_defaults_to_si(self):
        assert QuerySpec.from_request({"model": "fig1"}).obligation == "si"

    @pytest.mark.parametrize(
        "doc",
        [{}, {"model": 7}, {"model": "fig1", "obligation": 3},
         {"model": "fig1", "flags": "verbose"}],
        ids=["no-model", "non-string-model", "non-string-obligation", "non-dict-flags"],
    )
    def test_malformed_requests_rejected(self, doc):
        with pytest.raises(ServiceError):
            QuerySpec.from_request(doc)


class TestCacheKey:
    def test_deterministic(self):
        spec = QuerySpec(model="fig1", obligation="si-solve")
        assert cache_key(spec) == cache_key(spec)

    def test_every_spec_field_feeds_the_key(self):
        base = QuerySpec(model="kbp24-f4", obligation="si-solve")
        keys = {
            cache_key(base),
            cache_key(QuerySpec(model="kbp24-f5", obligation="si-solve")),
            cache_key(QuerySpec(model="kbp24-f4", obligation="si")),
            cache_key(QuerySpec(model="kbp24-f4", obligation="si-solve",
                                flags=(("deep", True),))),
        }
        assert len(keys) == 4

    def test_key_is_hex_sha256(self):
        key = cache_key(QuerySpec(model="fig1"))
        assert len(key) == 64
        int(key, 16)


class TestSolveQuery:
    def test_si_solve_matches_the_direct_emitter_bytes(self):
        """The service promise: cold misses return exactly the bytes a
        direct ``emit_certificate`` run would write to disk."""
        text = solve_query(QuerySpec(model="fig1", obligation="si-solve"))
        _, direct = certify_fig1()[0]
        assert text == direct.dumps() + "\n"

    def test_si_solve_artifact_replays(self):
        text = solve_query(QuerySpec(model="kbp24-f4", obligation="si-solve"))
        outcome = replay_artifact(loads(text))
        assert outcome.verdict == "well-posed"
        assert outcome.details["candidates"] == 16

    def test_invariant_artifact_replays(self):
        text = solve_query(
            QuerySpec(model="seqtrans-standard-L1-reliable", obligation="invariant")
        )
        assert replay_artifact(loads(text)).verdict == "invariant-holds"

    def test_si_chain_artifact_replays(self):
        text = solve_query(
            QuerySpec(model="seqtrans-standard-L1-reliable", obligation="si")
        )
        assert replay_artifact(loads(text)).verdict == "si-fixpoint-verified"

    def test_execution_knobs_do_not_change_the_bytes(self, tmp_path):
        spec = QuerySpec(model="kbp24-f6", obligation="si-solve")
        plain = solve_query(spec)
        checkpointed = solve_query(
            spec, workers=1, checkpoint=tmp_path / "solve.journal"
        )
        assert plain == checkpointed

    def test_unknown_obligation_rejected(self):
        with pytest.raises(ServiceError, match="unknown obligation"):
            solve_query(QuerySpec(model="fig1", obligation="liveness"))

    def test_unknown_flags_rejected_not_ignored(self):
        spec = QuerySpec(model="fig1", obligation="si-solve", flags=(("deep", True),))
        with pytest.raises(ServiceError, match="unknown semantic flags"):
            solve_query(spec)

    def test_si_solve_needs_a_knowledge_based_model(self):
        with pytest.raises(ServiceError, match="knowledge-based"):
            solve_query(
                QuerySpec(model="seqtrans-standard-L1-reliable", obligation="si-solve")
            )

    def test_sst_obligations_need_a_standard_model(self):
        with pytest.raises(ServiceError, match="si-solve"):
            solve_query(QuerySpec(model="fig1", obligation="si"))

    def test_unknown_invariant_label_lists_the_pinned_ones(self):
        with pytest.raises(ServiceError, match="no safety obligation"):
            solve_query(
                QuerySpec(
                    model="seqtrans-standard-L1-reliable",
                    obligation="invariant:nope",
                )
            )
