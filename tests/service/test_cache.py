"""Cache correctness: byte-identity, tamper eviction, dedup, single-flight."""

from __future__ import annotations

import threading

import pytest

from repro.service import CertificateCache, SolveQueue


@pytest.fixture
def cache(tmp_path):
    return CertificateCache(tmp_path / "cache")


KEY = "a" * 64
OTHER = "b" * 64
DATA = b'{"format": "x"}\n'


class TestCacheRoundTrip:
    def test_put_get_byte_identical(self, cache):
        digest = cache.put(KEY, DATA)
        assert cache.get(KEY) == DATA
        assert cache.object_path(digest).read_bytes() == DATA
        assert cache.stats.snapshot()["hits"] == 1

    def test_unknown_key_is_a_miss(self, cache):
        assert cache.get(KEY) is None
        assert cache.stats.snapshot() == {
            "hits": 0, "misses": 1, "puts": 0, "deduped_puts": 0, "evictions": 0,
        }

    def test_journal_paths_are_per_key(self, cache):
        assert cache.journal_path(KEY) != cache.journal_path(OTHER)
        assert cache.journal_path(KEY).parent == cache.journals_dir


class TestTamperEviction:
    def test_flipped_byte_evicts_and_misses(self, cache):
        digest = cache.put(KEY, DATA)
        path = cache.object_path(digest)
        path.write_bytes(DATA.replace(b"x", b"y"))
        assert cache.get(KEY) is None
        # Both the object and the reference are gone; the next get is a
        # plain miss, never the tampered bytes.
        assert not path.exists()
        assert not cache.key_path(KEY).exists()
        assert cache.stats.snapshot()["evictions"] == 1

    def test_truncated_object_evicts(self, cache):
        digest = cache.put(KEY, DATA)
        cache.object_path(digest).write_bytes(DATA[:4])
        assert cache.get(KEY) is None
        assert cache.stats.snapshot()["evictions"] == 1

    def test_missing_object_evicts_the_reference(self, cache):
        digest = cache.put(KEY, DATA)
        cache.object_path(digest).unlink()
        assert cache.get(KEY) is None
        assert not cache.key_path(KEY).exists()

    def test_resolve_after_eviction_serves_fresh_bytes(self, cache):
        digest = cache.put(KEY, DATA)
        cache.object_path(digest).write_bytes(b"garbage")
        assert cache.get(KEY) is None
        cache.put(KEY, DATA)  # the re-solve
        assert cache.get(KEY) == DATA


class TestDedup:
    def test_identical_bytes_share_one_object(self, cache):
        first = cache.put(KEY, DATA)
        second = cache.put(OTHER, DATA)
        assert first == second
        objects = list(cache.objects_dir.glob("*.cert.json"))
        assert len(objects) == 1
        assert cache.stats.snapshot()["deduped_puts"] == 1
        assert cache.get(KEY) == cache.get(OTHER) == DATA


class TestSingleFlight:
    def test_concurrent_submits_run_the_job_once(self):
        queue = SolveQueue(workers=2)
        release = threading.Event()
        runs = []

        def job(publish):
            runs.append(True)
            publish("tick")
            release.wait(timeout=10)
            return b"result"

        seen_a, seen_b = [], []
        flight_a, leader_a = queue.submit(KEY, job, seen_a.append)
        # The leader's job is now blocked on `release`; a second submit
        # must coalesce instead of starting another run.
        flight_b, leader_b = queue.submit(KEY, job, seen_b.append)
        assert leader_a and not leader_b
        assert flight_a is flight_b
        release.set()
        assert flight_a.future.result(timeout=10) == b"result"
        assert runs == [True]
        assert queue.status()["coalesced"] == 1
        queue.shutdown()

    def test_late_joiner_receives_the_latest_progress(self):
        queue = SolveQueue(workers=1)
        published = threading.Event()
        release = threading.Event()

        def job(publish):
            publish("first")
            publish("second")
            published.set()
            release.wait(timeout=10)
            return b"ok"

        queue.submit(KEY, job)
        assert published.wait(timeout=10)
        late = []
        _, leader = queue.submit(KEY, job, late.append)
        assert not leader
        assert late == ["second"]  # stale ticks are not replayed, only the last
        release.set()
        queue.shutdown()

    def test_flight_closes_before_the_future_resolves(self):
        queue = SolveQueue(workers=1)
        flight, _ = queue.submit(KEY, lambda publish: b"one")
        flight.future.result(timeout=10)
        # A fresh submit after completion opens a fresh flight: the queue
        # caches nothing (that is the CertificateCache's job).
        flight2, leader2 = queue.submit(KEY, lambda publish: b"two")
        assert leader2 and flight2 is not flight
        assert flight2.future.result(timeout=10) == b"two"
        queue.shutdown()

    def test_job_failure_reaches_every_waiter_and_clears(self):
        queue = SolveQueue(workers=1)
        release = threading.Event()

        def bad(publish):
            release.wait(timeout=10)
            raise RuntimeError("solver exploded")

        flight_a, _ = queue.submit(KEY, bad)
        flight_b, leader_b = queue.submit(KEY, bad)
        assert not leader_b and flight_b is flight_a
        release.set()
        with pytest.raises(RuntimeError, match="solver exploded"):
            flight_a.future.result(timeout=10)
        assert queue.status()["in_flight"] == 0
        queue.shutdown()
