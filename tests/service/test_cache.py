"""Cache correctness: byte-identity, tamper eviction, dedup, single-flight."""

from __future__ import annotations

import threading

import pytest

from repro.service import CertificateCache, SolveQueue


@pytest.fixture
def cache(tmp_path):
    return CertificateCache(tmp_path / "cache")


KEY = "a" * 64
OTHER = "b" * 64
DATA = b'{"format": "x"}\n'


class TestCacheRoundTrip:
    def test_put_get_byte_identical(self, cache):
        digest = cache.put(KEY, DATA)
        assert cache.get(KEY) == DATA
        assert cache.object_path(digest).read_bytes() == DATA
        assert cache.stats.snapshot()["hits"] == 1

    def test_unknown_key_is_a_miss(self, cache):
        assert cache.get(KEY) is None
        assert cache.stats.snapshot() == {
            "hits": 0, "misses": 1, "puts": 0, "deduped_puts": 0,
            "evictions": 0, "lru_evictions": 0,
        }

    def test_journal_paths_are_per_key(self, cache):
        assert cache.journal_path(KEY) != cache.journal_path(OTHER)
        assert cache.journal_path(KEY).parent == cache.journals_dir


class TestTamperEviction:
    def test_flipped_byte_evicts_and_misses(self, cache):
        digest = cache.put(KEY, DATA)
        path = cache.object_path(digest)
        path.write_bytes(DATA.replace(b"x", b"y"))
        assert cache.get(KEY) is None
        # Both the object and the reference are gone; the next get is a
        # plain miss, never the tampered bytes.
        assert not path.exists()
        assert not cache.key_path(KEY).exists()
        assert cache.stats.snapshot()["evictions"] == 1

    def test_truncated_object_evicts(self, cache):
        digest = cache.put(KEY, DATA)
        cache.object_path(digest).write_bytes(DATA[:4])
        assert cache.get(KEY) is None
        assert cache.stats.snapshot()["evictions"] == 1

    def test_missing_object_evicts_the_reference(self, cache):
        digest = cache.put(KEY, DATA)
        cache.object_path(digest).unlink()
        assert cache.get(KEY) is None
        assert not cache.key_path(KEY).exists()

    def test_resolve_after_eviction_serves_fresh_bytes(self, cache):
        digest = cache.put(KEY, DATA)
        cache.object_path(digest).write_bytes(b"garbage")
        assert cache.get(KEY) is None
        cache.put(KEY, DATA)  # the re-solve
        assert cache.get(KEY) == DATA


class TestDedup:
    def test_identical_bytes_share_one_object(self, cache):
        first = cache.put(KEY, DATA)
        second = cache.put(OTHER, DATA)
        assert first == second
        objects = list(cache.objects_dir.glob("*.cert.json"))
        assert len(objects) == 1
        assert cache.stats.snapshot()["deduped_puts"] == 1
        assert cache.get(KEY) == cache.get(OTHER) == DATA


def _payload(tag: str, size: int = 100) -> bytes:
    return (tag * size)[:size].encode("ascii")


def _age(cache, key, seconds_ago):
    """Pin a key file's recency record to a deterministic past instant."""
    import os
    import time

    stamp = time.time() - seconds_ago
    os.utime(cache.key_path(key), (stamp, stamp))


class TestBoundedCache:
    K1, K2, K3 = "1" * 64, "2" * 64, "3" * 64

    def test_unbounded_by_default(self, cache):
        assert cache.max_bytes is None
        for i in range(20):
            cache.put(f"{i:064d}", _payload(str(i)))
        assert cache.stats.snapshot()["lru_evictions"] == 0

    def test_env_var_sets_the_budget(self, tmp_path, monkeypatch):
        from repro.service.cache import CACHE_MAX_BYTES_ENV_VAR

        monkeypatch.setenv(CACHE_MAX_BYTES_ENV_VAR, "1234")
        assert CertificateCache(tmp_path / "c").max_bytes == 1234
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV_VAR, "lots")
        with pytest.raises(ValueError):
            CertificateCache(tmp_path / "c2")

    def test_least_recently_used_reference_goes_first(self, tmp_path):
        cache = CertificateCache(tmp_path / "c", max_bytes=250)
        cache.put(self.K1, _payload("a"))
        _age(cache, self.K1, 30)
        cache.put(self.K2, _payload("b"))
        _age(cache, self.K2, 20)
        cache.put(self.K3, _payload("c"))  # 300 bytes total > 250
        assert cache.get(self.K1) is None  # oldest retired
        assert cache.get(self.K2) == _payload("b")
        assert cache.get(self.K3) == _payload("c")
        assert cache.stats.snapshot()["lru_evictions"] == 1
        assert cache.object_bytes() <= 250

    def test_a_hit_refreshes_recency(self, tmp_path):
        cache = CertificateCache(tmp_path / "c", max_bytes=250)
        cache.put(self.K1, _payload("a"))
        _age(cache, self.K1, 30)
        cache.put(self.K2, _payload("b"))
        _age(cache, self.K2, 20)
        assert cache.get(self.K1) == _payload("a")  # bumps K1 past K2
        cache.put(self.K3, _payload("c"))
        assert cache.get(self.K1) == _payload("a")
        assert cache.get(self.K2) is None

    def test_the_fresh_put_is_never_its_own_victim(self, tmp_path):
        cache = CertificateCache(tmp_path / "c", max_bytes=50)
        cache.put(self.K1, _payload("a"))  # alone over budget
        assert cache.get(self.K1) == _payload("a")
        assert cache.stats.snapshot()["lru_evictions"] == 0

    def test_pinned_keys_are_never_retired(self, tmp_path):
        cache = CertificateCache(tmp_path / "c", max_bytes=250)
        cache.put(self.K1, _payload("a"))
        _age(cache, self.K1, 30)
        cache.pin(self.K1)
        cache.put(self.K2, _payload("b"))
        _age(cache, self.K2, 20)
        cache.put(self.K3, _payload("c"))
        assert cache.get(self.K1) == _payload("a")  # pinned oldest survives
        assert cache.get(self.K2) is None  # next-oldest paid instead
        cache.unpin(self.K1)
        assert self.K1 not in cache._pinned()

    def test_pins_are_refcounted(self, tmp_path):
        cache = CertificateCache(tmp_path / "c", max_bytes=250)
        cache.pin(self.K1)
        cache.pin(self.K1)
        cache.unpin(self.K1)
        assert self.K1 in cache._pinned()
        cache.unpin(self.K1)
        assert self.K1 not in cache._pinned()

    def test_shared_object_survives_a_living_reference(self, tmp_path):
        cache = CertificateCache(tmp_path / "c", max_bytes=150)
        shared = _payload("s")
        digest = cache.put(self.K1, shared)
        _age(cache, self.K1, 30)
        assert cache.put(self.K2, shared) == digest  # dedup: one object
        _age(cache, self.K2, 20)
        cache.pin(self.K2)
        cache.put(self.K3, _payload("c"))  # 200 bytes of objects > 150
        # K1's reference went (freeing nothing — the object is shared),
        # K2 is pinned, K3 is the fresh put: everything evictable is gone
        # and the cache runs over budget rather than touch a pinned key
        # or unlink an object a living reference still needs.
        assert cache.get(self.K1) is None
        assert cache.get(self.K2) == shared
        assert cache.object_path(digest).exists()

    def test_evicting_a_shared_reference_frees_no_bytes_so_lru_continues(
        self, tmp_path
    ):
        cache = CertificateCache(tmp_path / "c", max_bytes=150)
        shared = _payload("s")
        cache.put(self.K1, shared)
        _age(cache, self.K1, 30)
        cache.put(self.K2, shared)
        _age(cache, self.K2, 20)
        cache.put(self.K3, _payload("c"))
        # Retiring K1 alone frees nothing (K2 still holds the object), so
        # the budget walk continues through K2; only then do the shared
        # bytes actually leave disk.
        assert cache.get(self.K1) is None
        assert cache.get(self.K2) is None
        assert cache.get(self.K3) == _payload("c")
        assert cache.object_bytes() <= 150

    def test_tamper_eviction_semantics_survive_the_budget(self, tmp_path):
        cache = CertificateCache(tmp_path / "c", max_bytes=10_000)
        digest = cache.put(self.K1, _payload("a"))
        cache.object_path(digest).write_bytes(b"garbage")
        assert cache.get(self.K1) is None
        snap = cache.stats.snapshot()
        assert snap["evictions"] == 1 and snap["lru_evictions"] == 0


class TestSingleFlight:
    def test_concurrent_submits_run_the_job_once(self):
        queue = SolveQueue(workers=2)
        release = threading.Event()
        runs = []

        def job(publish):
            runs.append(True)
            publish("tick")
            release.wait(timeout=10)
            return b"result"

        seen_a, seen_b = [], []
        flight_a, leader_a = queue.submit(KEY, job, seen_a.append)
        # The leader's job is now blocked on `release`; a second submit
        # must coalesce instead of starting another run.
        flight_b, leader_b = queue.submit(KEY, job, seen_b.append)
        assert leader_a and not leader_b
        assert flight_a is flight_b
        release.set()
        assert flight_a.future.result(timeout=10) == b"result"
        assert runs == [True]
        assert queue.status()["coalesced"] == 1
        queue.shutdown()

    def test_late_joiner_receives_the_latest_progress(self):
        queue = SolveQueue(workers=1)
        published = threading.Event()
        release = threading.Event()

        def job(publish):
            publish("first")
            publish("second")
            published.set()
            release.wait(timeout=10)
            return b"ok"

        queue.submit(KEY, job)
        assert published.wait(timeout=10)
        late = []
        _, leader = queue.submit(KEY, job, late.append)
        assert not leader
        assert late == ["second"]  # stale ticks are not replayed, only the last
        release.set()
        queue.shutdown()

    def test_flight_closes_before_the_future_resolves(self):
        queue = SolveQueue(workers=1)
        flight, _ = queue.submit(KEY, lambda publish: b"one")
        flight.future.result(timeout=10)
        # A fresh submit after completion opens a fresh flight: the queue
        # caches nothing (that is the CertificateCache's job).
        flight2, leader2 = queue.submit(KEY, lambda publish: b"two")
        assert leader2 and flight2 is not flight
        assert flight2.future.result(timeout=10) == b"two"
        queue.shutdown()

    def test_job_failure_reaches_every_waiter_and_clears(self):
        queue = SolveQueue(workers=1)
        release = threading.Event()

        def bad(publish):
            release.wait(timeout=10)
            raise RuntimeError("solver exploded")

        flight_a, _ = queue.submit(KEY, bad)
        flight_b, leader_b = queue.submit(KEY, bad)
        assert not leader_b and flight_b is flight_a
        release.set()
        with pytest.raises(RuntimeError, match="solver exploded"):
            flight_a.future.result(timeout=10)
        assert queue.status()["in_flight"] == 0
        queue.shutdown()
