"""The served-verdict loop end to end, against a real server subprocess.

These are the PR's acceptance scenarios: hot hits byte-identical to cold
solves without touching the solver, tampered cache entries evicted and
re-solved (never served), concurrent identical queries coalesced onto
one solve, and a SIGKILLed server resuming mid-solve from its shard
journal with a byte-identical final certificate.
"""

from __future__ import annotations

import threading

import pytest

from repro.certificates.replay import replay_artifact
from repro.certificates.store import loads
from repro.service import QuerySpec, ServiceError, solve_query
from repro.service.cache import CertificateCache
from repro.service.client import ServiceClient

#: 2^8 candidates: sharded into 8 journaled shards, still sub-second.
MODEL = "kbp24-f8"


def solve(server, model=MODEL, **kwargs):
    with ServiceClient(port=server.port) as client:
        return client.solve(model, **kwargs)


class TestHotAndCold:
    def test_hit_is_byte_identical_and_skips_the_solver(self, server):
        cold = solve(server)
        hot = solve(server)
        assert cold.cache == "cold"
        assert hot.cache == "hit"
        assert hot.data == cold.data
        assert hot.digest == cold.digest
        # No solver run ⇒ no shard ticks on the hot path.
        assert cold.progress_events > 0
        assert hot.progress_events == 0

    def test_cold_progress_is_journal_ordered_and_complete(self, server):
        ticks = []
        with ServiceClient(port=server.port) as client:
            client.solve(MODEL, on_progress=ticks.append)
        assert [t["kind"] for t in ticks] == ["shard-completed"] * 8
        assert [t["shards_completed"] for t in ticks] == list(range(1, 9))
        assert ticks[-1]["candidates_checked"] == 256

    def test_served_artifact_replays_locally(self, server):
        result = solve(server)
        outcome = replay_artifact(loads(result.text))
        assert outcome.verdict == "well-posed"

    def test_hot_artifact_matches_a_local_solve(self, server):
        """The cache serves exactly what a direct in-process solve emits."""
        reference = solve_query(QuerySpec(model=MODEL, obligation="si-solve"))
        assert solve(server).text == reference
        assert solve(server).text == reference  # and again from the cache

    def test_distinct_queries_get_distinct_entries(self, server):
        a = solve(server, model="kbp24-f4")
        b = solve(server, model="kbp24-f5")
        assert a.key != b.key
        assert a.data != b.data

    def test_errors_are_events_not_disconnects(self, server):
        with ServiceClient(port=server.port) as client:
            with pytest.raises(ServiceError, match="unknown model key"):
                client.solve("no-such-model")
            # The connection survives the error; the next op works.
            assert client.ping()["event"] == "pong"


class TestTamperedCache:
    def test_tampered_entry_is_evicted_and_resolved(self, server):
        cold = solve(server)
        # Corrupt the cached object on disk behind the server's back.
        cache = CertificateCache(server.cache_dir)
        path = cache.object_path(cold.digest)
        original = path.read_bytes()
        flipped = bytes([original[0] ^ 0x01]) + original[1:]
        path.write_bytes(flipped)
        again = solve(server)
        # Never the tampered bytes: the entry was evicted, the query
        # re-solved, and the fresh artifact served (and re-cached).
        assert again.cache == "cold"
        assert again.data == cold.data
        assert solve(server).cache == "hit"

    def test_deleted_object_is_resolved(self, server):
        cold = solve(server)
        CertificateCache(server.cache_dir).object_path(cold.digest).unlink()
        again = solve(server)
        assert again.cache == "cold"
        assert again.data == cold.data


class TestSingleFlight:
    def test_concurrent_identical_queries_run_one_solve(self, server):
        results = [None, None]
        barrier = threading.Barrier(2)

        def query(slot):
            barrier.wait()
            results[slot] = solve(server, model="kbp24-f11")

        threads = [
            threading.Thread(target=query, args=(slot,)) for slot in (0, 1)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        a, b = results
        assert a is not None and b is not None
        assert {a.cache, b.cache} == {"cold", "coalesced"}
        assert a.data == b.data
        with ServiceClient(port=server.port) as client:
            status = client.status()
        # Exactly one solve: one put, one coalesced follower.
        assert status["cache"]["puts"] == 1
        assert status["queue"]["coalesced"] == 1


class TestKillAndResume:
    def test_sigkilled_solve_resumes_from_the_journal(self, server):
        """Kill the server (SIGKILL) mid-solve; a restart on the same cache
        dir resumes from the shard journal and the final certificate is
        byte-identical to an uninterrupted solve."""
        model = "kbp24-f12"  # 8 shards x 512 candidates ≈ 0.2 s per shard
        seen = threading.Event()

        def on_progress(event):
            if event["shards_completed"] >= 2:
                seen.set()

        def killer():
            assert seen.wait(timeout=60)
            server.kill()

        thread = threading.Thread(target=killer)
        thread.start()
        with pytest.raises(ServiceError):
            with ServiceClient(port=server.port) as client:
                client.solve(model, on_progress=on_progress)
        thread.join(timeout=60)

        # The journal survived the kill with at least the acked shards.
        journals = list((server.cache_dir / "journals").glob("*.journal"))
        assert len(journals) == 1

        server.start()
        ticks = []
        with ServiceClient(port=server.port) as client:
            resumed = client.solve(model, on_progress=ticks.append)
        assert resumed.cache == "cold"
        # The first tick is the resume batch: completed shards came from
        # disk, not from re-running the solver.
        assert ticks[0]["kind"] == "resume"
        assert ticks[0]["shards_completed"] >= 2
        assert ticks[0]["candidates_resumed"] == ticks[0]["candidates_checked"]
        assert all(t["kind"] == "shard-completed" for t in ticks[1:])

        reference = solve_query(QuerySpec(model=model, obligation="si-solve"))
        assert resumed.text == reference
        # The journal is cleared once the artifact is cached, and the
        # next query is a pure cache hit.
        assert not journals[0].exists()
        assert solve(server, model=model).cache == "hit"
