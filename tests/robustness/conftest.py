"""Shared fixture: the knowledge-based program the chaos suite solves.

Small enough that a full sweep is cheap (8 states, 128 candidates) yet
sharded exactly like a production solve — ``plan_shards`` still splits the
free bits into 8 shards at 2 workers, so every supervisor code path
(dispatch, crash, respawn, deadline, fallback, journal) is exercised for
real, in real worker processes.
"""

from __future__ import annotations

import pytest

from repro.predicates import Predicate
from repro.statespace import BoolDomain, space_of
from repro.unity import Const, Program, Statement, Unary, Var, knows, lnot


def make_chaos_kbp() -> Program:
    space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
    statements = [
        Statement(
            name="s0",
            targets=("a",),
            exprs=(Const(True),),
            guard=knows("P", Var("b")),
        ),
        Statement(
            name="s1",
            targets=("b",),
            exprs=(Const(False),),
            guard=lnot(knows("Q", Var("c"))),
        ),
        Statement(
            name="s2",
            targets=("c",),
            exprs=(Const(True),),
            guard=knows("Q", Unary("not", Var("a"))) & Var("a"),
        ),
    ]
    return Program(
        space,
        Predicate(space, 1),
        statements,
        processes={"P": ("a", "b"), "Q": ("c",)},
        name="chaos-kbp",
    )


@pytest.fixture(scope="module")
def kbp() -> Program:
    return make_chaos_kbp()


@pytest.fixture(scope="module")
def serial_report(kbp):
    from repro.core.kbp import solve_si

    return solve_si(kbp, parallel="never")
