"""Supervisor policy machinery and the fault-plan grammar, unit-level.

The chaos suite (``test_chaos.py``) drives these through real solves; the
tests here pin the pieces in isolation — backoff arithmetic, incident
accounting, the plan grammar, one-shot firing, seeded chaos binding.
"""

from __future__ import annotations

import pytest

from repro.robustness import (
    FaultLog,
    FaultPlan,
    FaultPolicy,
    SolverWorkerError,
)


class TestFaultPolicy:
    def test_defaults_supervise_with_fallback(self):
        policy = FaultPolicy()
        assert policy.supervised and policy.serial_fallback
        assert policy.max_retries == 2

    def test_off_restores_bare_loop(self):
        off = FaultPolicy.off()
        assert not off.supervised
        assert not off.serial_fallback
        assert off.max_retries == 0

    def test_backoff_schedule(self):
        policy = FaultPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.3
        )
        assert policy.backoff(1) == 0.0  # first dispatch is immediate
        assert policy.backoff(2) == pytest.approx(0.1)
        assert policy.backoff(3) == pytest.approx(0.2)
        assert policy.backoff(4) == pytest.approx(0.3)  # capped
        assert policy.backoff(9) == pytest.approx(0.3)


class TestFaultLog:
    def test_record_and_count(self):
        log = FaultLog()
        assert log.clean
        log.record("worker-crash", shard_index=3, attempt=1, detail="x")
        log.record("retry", shard_index=3, attempt=2)
        assert log.count("worker-crash") == 1
        assert log.count("retry") == 1
        assert not log.clean

    def test_resumed_shards_are_not_clean(self):
        log = FaultLog()
        log.shards_resumed = 2
        assert not log.clean


class TestSolverWorkerError:
    def test_message_names_shard_and_progress(self):
        err = SolverWorkerError(
            shard_mask=0b1100, attempts=3, completed=5, pending=3, cause="boom"
        )
        assert "0b1100" in str(err)
        assert "5 shard(s) completed" in str(err)
        assert "3 pending" in str(err)
        assert 'parallel="never"' in str(err)
        assert err.shard_mask == 0b1100
        assert err.attempts == 3


class TestFaultPlanGrammar:
    def test_parse_simple_clauses(self):
        plan = FaultPlan.parse("crash@2;hang@0:seconds=1.5;delay@1:seconds=0.2")
        kinds = [(c.kind, c.target) for c in plan.clauses]
        assert kinds == [("crash", 2), ("hang", 0), ("delay", 1)]
        assert plan.clauses[1].seconds == 1.5

    def test_parse_times(self):
        (clause,) = FaultPlan.parse("crash@4:times=3").clauses
        assert clause.times == 3
        assert clause.describe() == "crash@4:times=3"

    def test_parse_rejects_bad_clauses(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("explode@1")
        with pytest.raises(ValueError):
            FaultPlan.parse("crash@x")
        with pytest.raises(ValueError):
            FaultPlan.parse("crash@1:seconds")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULT_PLAN", "kill@2")
        plan = FaultPlan.from_env()
        assert plan is not None
        assert plan.clauses[0].kind == "kill"

    def test_chaos_binding_is_deterministic(self):
        plan = FaultPlan.parse("chaos@7:crash=2:hang=1:seconds=0.25")
        bound_a = plan.bind(8)
        bound_b = plan.bind(8)
        assert [
            (c.kind, c.target) for c in bound_a.clauses
        ] == [(c.kind, c.target) for c in bound_b.clauses]
        kinds = [c.kind for c in bound_a.clauses]
        assert kinds.count("crash") == 2 and kinds.count("hang") == 1
        targets = [c.target for c in bound_a.clauses]
        assert len(set(targets)) == 3  # distinct shards
        assert all(0 <= t < 8 for t in targets)

    def test_chaos_binding_caps_at_shard_count(self):
        plan = FaultPlan.parse("chaos@1:crash=5:hang=5")
        assert len(plan.bind(4).clauses) == 4

    def test_bind_leaves_concrete_clauses_alone(self):
        plan = FaultPlan.parse("crash@3;kill@1")
        bound = plan.bind(8)
        assert [(c.kind, c.target) for c in bound.clauses] == [
            ("crash", 3),
            ("kill", 1),
        ]


class TestOneShotFiring:
    def test_fire_respects_times_across_instances(self, tmp_path):
        scratch = str(tmp_path / "markers")
        plan = FaultPlan.parse("delay@0:times=2", scratch=scratch)
        (clause,) = plan.clauses
        assert plan._fire(clause)
        # A second plan object sharing the scratch dir (≈ a respawned
        # worker) sees the first firing's marker.
        again = FaultPlan.parse("delay@0:times=2", scratch=scratch)
        (clause2,) = again.clauses
        assert again._fire(clause2)
        assert not plan._fire(clause)
        assert not again._fire(clause2)

    def test_tears_record_fires_once(self, tmp_path):
        plan = FaultPlan.parse("torn@2", scratch=str(tmp_path / "m"))
        assert not plan.tears_record(1)
        assert plan.tears_record(2)
        assert not plan.tears_record(2)  # one-shot
