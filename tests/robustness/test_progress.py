"""The supervisor's progress callback: ordering, counts, resume ticks.

The service front-end (repro.service) streams these ticks to clients, but
the contract is standalone: one ``shard-completed`` event per journal
append, in exactly the journal's record order, with cumulative counts —
plus one leading ``resume`` event when a checkpoint restored shards.
"""

from __future__ import annotations

import json

import pytest

from repro.core.kbp import solve_si
from repro.core.parallel import solve_si_parallel
from repro.robustness import FaultPlan, SimulatedKill, SolveProgress, verify_journal

from .conftest import make_chaos_kbp


def journal_record_order(path):
    """Shard indices in the order their records hit the journal file."""
    order = []
    with open(path) as handle:
        for line in handle:
            entry = json.loads(line)
            if entry.get("type") == "shard":
                order.append(entry["index"])
    return order


class TestOrderingMatchesJournal:
    def test_in_process_checkpointed_solve(self, kbp, tmp_path):
        """workers=1 + checkpoint shards like 2 workers: 8 journal appends,
        8 callback ticks, same order."""
        events = []
        journal_path = tmp_path / "solve.journal"
        report = solve_si(
            kbp, workers=1, checkpoint=journal_path, progress=events.append
        )
        completed = [e for e in events if e.kind == "shard-completed"]
        assert [e.shard_index for e in completed] == journal_record_order(
            journal_path
        )
        assert len(completed) == 8
        # Cumulative counts: strictly increasing completions, the final
        # tick covers the whole sweep.
        assert [e.shards_completed for e in completed] == list(range(1, 9))
        assert all(e.shards_total == 8 for e in completed)
        checked = [e.candidates_checked for e in completed]
        assert checked == sorted(checked)
        assert checked[-1] == report.candidates_checked
        assert all(e.candidates_resumed == 0 for e in completed)
        assert not [e for e in events if e.kind == "resume"]

    def test_multiprocess_solve(self, kbp, tmp_path):
        """With real workers completion order is nondeterministic — but the
        callback order still matches the journal's, tick for tick."""
        events = []
        journal_path = tmp_path / "solve.journal"
        solve_si_parallel(
            kbp, workers=2, checkpoint=journal_path, progress=events.append
        )
        assert [
            e.shard_index for e in events if e.kind == "shard-completed"
        ] == journal_record_order(journal_path)

    def test_progress_without_checkpoint(self, kbp, serial_report):
        """No journal needed: progress alone forces the supervised route."""
        events = []
        report = solve_si(kbp, workers=2, progress=events.append)
        assert report.solutions == serial_report.solutions
        completed = [e for e in events if e.kind == "shard-completed"]
        assert len(completed) == len(set(e.shard_index for e in completed))
        assert completed[-1].shards_completed == completed[-1].shards_total
        assert (
            completed[-1].candidates_checked == report.candidates_checked
        )


class TestResumeTick:
    def test_resume_emits_leading_event_with_journal_counts(
        self, kbp, tmp_path
    ):
        journal_path = tmp_path / "solve.journal"
        with pytest.raises(SimulatedKill):
            solve_si_parallel(
                kbp,
                workers=2,
                checkpoint=journal_path,
                fault_plan=FaultPlan.parse("kill@2"),
            )
        journaled = verify_journal(journal_path)
        assert journaled["shards_journaled"] == 2

        events = []
        report = solve_si_parallel(
            kbp, workers=2, checkpoint=journal_path, progress=events.append
        )
        assert events[0].kind == "resume"
        assert events[0].shard_index is None
        assert events[0].shards_completed == 2
        assert events[0].shards_total == 8
        assert events[0].candidates_resumed == journaled["candidates_checked"]
        assert events[0].candidates_checked == journaled["candidates_checked"]
        completed = [e for e in events if e.kind == "shard-completed"]
        assert len(completed) == 6  # only the shards the journal lacked
        assert all(
            e.candidates_resumed == journaled["candidates_checked"]
            for e in completed
        )
        assert completed[-1].shards_completed == 8
        assert completed[-1].candidates_checked == report.candidates_checked


class TestRouting:
    def test_progress_rejects_serial_route(self, kbp):
        with pytest.raises(ValueError, match="progress"):
            solve_si(kbp, parallel="never", progress=lambda e: None)

    def test_progress_is_frozen(self):
        tick = SolveProgress(
            kind="shard-completed",
            shard_index=0,
            shards_completed=1,
            shards_total=8,
            candidates_checked=16,
            candidates_resumed=0,
        )
        with pytest.raises(Exception):
            tick.kind = "other"

    def test_standard_program_ignores_progress(self):
        """A knowledge-free program short-circuits to one sst; there are no
        shards to report, so the callback never fires."""
        program = make_chaos_kbp()
        from repro.predicates import Predicate
        from repro.unity import Const, Program, Statement

        space = program.space
        standard = Program(
            space,
            Predicate(space, 1),
            [
                Statement(
                    name="s0",
                    targets=("a",),
                    exprs=(Const(True),),
                    guard=Const(True),
                )
            ],
            name="standard",
        )
        events = []
        report = solve_si(standard, progress=events.append)
        assert report.candidates_checked == 1
        assert events == []
