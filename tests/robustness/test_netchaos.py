"""Network chaos: socket-transport solves under every injected fault.

The distributed counterpart of ``test_chaos.py``: every test runs real
``python -m repro.worker`` daemons over real TCP and asserts the same
solver-level invariants — identical solutions and counts, byte-identical
certificates — no matter which network faults fire, which workers die,
or whether the coordinator itself is killed and resumed.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.certificates.canonical import canonical_dumps
from repro.core.kbp import solve_si
from repro.core.parallel import solve_si_parallel
from repro.robustness import (
    FaultPlan,
    FaultPlanError,
    NetworkFaultPlan,
    SimulatedKill,
    verify_journal,
)


def assert_same_report(reference, report):
    assert report.candidates_checked == reference.candidates_checked
    assert tuple(p.mask for p in report.solutions) == tuple(
        p.mask for p in reference.solutions
    )


@pytest.fixture(autouse=True)
def fast_heartbeats(monkeypatch):
    """Tight liveness windows so stall/loss tests finish in seconds."""
    monkeypatch.setenv("REPRO_SOCKET_HEARTBEAT", "0.2")
    monkeypatch.setenv("REPRO_SOCKET_HEARTBEAT_TIMEOUT", "1.5")


# ----------------------------------------------------------------------
# grammar and binding
# ----------------------------------------------------------------------


class TestNetworkGrammar:
    def test_every_network_kind_parses(self):
        plan = NetworkFaultPlan.parse(
            "connrefused@0;disconnect@2;stall@1:seconds=30;dupresult@3;"
            "corruptframe@2;netchaos@7:refused=1:disconnect=2"
        )
        assert [c.kind for c in plan.clauses] == [
            "connrefused",
            "disconnect",
            "stall",
            "dupresult",
            "corruptframe",
            "netchaos",
        ]

    def test_base_kinds_still_parse(self):
        plan = NetworkFaultPlan.parse("crash@1;delay@0:seconds=0.1")
        assert [c.kind for c in plan.clauses] == ["crash", "delay"]

    def test_base_plan_rejects_network_kinds(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("disconnect@2")

    def test_stall_defaults_twenty_seconds(self):
        plan = NetworkFaultPlan.parse("stall@1")
        assert plan.clauses[0].seconds == 20.0

    def test_from_env_upgrades_to_network_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "crash@0;dupresult@2")
        plan = FaultPlan.from_env()
        assert isinstance(plan, NetworkFaultPlan)
        monkeypatch.setenv("REPRO_FAULT_PLAN", "crash@0")
        assert not isinstance(FaultPlan.from_env(), NetworkFaultPlan)

    def test_netchaos_binding_is_deterministic(self):
        spec = "netchaos@7:refused=2:disconnect=1:stall=1:dup=1:corrupt=1"
        one = NetworkFaultPlan.parse(spec).bind(8, worker_count=3)
        two = NetworkFaultPlan.parse(spec).bind(8, worker_count=3)
        assert [
            (c.kind, c.target) for c in one.clauses
        ] == [(c.kind, c.target) for c in two.clauses]
        kinds = [c.kind for c in one.clauses]
        assert kinds.count("connrefused") == 2
        for kind in ("disconnect", "stall", "dupresult", "corruptframe"):
            assert kinds.count(kind) == 1
        # Shard-level targets are distinct draws from the shard range.
        shard_targets = [
            c.target for c in one.clauses if c.kind != "connrefused"
        ]
        assert len(set(shard_targets)) == len(shard_targets)
        assert all(0 <= t < 8 for t in shard_targets)
        assert all(
            0 <= c.target < 3 for c in one.clauses if c.kind == "connrefused"
        )

    def test_netchaos_counts_cap_at_the_shard_count(self):
        plan = NetworkFaultPlan.parse("netchaos@1:disconnect=99").bind(4)
        assert sum(1 for c in plan.clauses if c.kind == "disconnect") == 4


# ----------------------------------------------------------------------
# the chaos matrix: one solve per fault kind, always equal to serial
# ----------------------------------------------------------------------


class TestChaosMatrix:
    @pytest.mark.parametrize(
        "spec",
        [
            "connrefused@0",
            "disconnect@2",
            "stall@3:seconds=3",
            "corruptframe@4",
        ],
    )
    def test_retried_faults_converge_to_serial(
        self, kbp, serial_report, spawn_worker, spec
    ):
        addrs = [spawn_worker(f"w{i}")[1] for i in range(2)]
        report = solve_si_parallel(
            kbp, remote_workers=addrs, fault_plan=NetworkFaultPlan.parse(spec)
        )
        assert_same_report(serial_report, report)
        assert sum(report.dispatch.worker_retries.values()) >= 1
        if spec != "connrefused@0":  # connect retries precede any link
            assert report.fault_log.count("link-retry") >= 1

    def test_duplicate_result_is_deduplicated(
        self, kbp, serial_report, spawn_worker
    ):
        addrs = [spawn_worker(f"w{i}")[1] for i in range(2)]
        report = solve_si_parallel(
            kbp,
            remote_workers=addrs,
            fault_plan=NetworkFaultPlan.parse("dupresult@1"),
        )
        assert_same_report(serial_report, report)
        assert report.dispatch.duplicate_results == 1
        assert report.fault_log.count("duplicate-result") == 1

    def test_seeded_netchaos_certified(self, kbp, spawn_worker):
        """Everything at once, certified: the artifact must not notice."""
        reference = solve_si(kbp, parallel="never", emit_certificate=True)
        addrs = [spawn_worker(f"w{i}")[1] for i in range(2)]
        plan = NetworkFaultPlan.parse(
            "netchaos@7:refused=1:disconnect=1:stall=1:dup=1:corrupt=1"
            ":seconds=3"
        )
        report = solve_si_parallel(
            kbp, remote_workers=addrs, emit_certificate=True, fault_plan=plan
        )
        assert canonical_dumps(report.certificate.to_payload()) == (
            canonical_dumps(reference.certificate.to_payload())
        )
        assert sum(report.dispatch.worker_retries.values()) >= 1


# ----------------------------------------------------------------------
# worker loss: leases come home, survivors finish the solve
# ----------------------------------------------------------------------


class TestWorkerLoss:
    def test_daemon_death_fails_over_to_the_survivor(
        self, kbp, serial_report, spawn_worker
    ):
        """``crash@1`` kills the whole daemon process mid-shard (the
        "worker machine died" case); the shard's lease is revoked and the
        surviving daemon re-executes it."""
        addrs = [spawn_worker(f"w{i}")[1] for i in range(2)]
        report = solve_si_parallel(
            kbp,
            remote_workers=addrs,
            fault_plan=NetworkFaultPlan.parse("crash@1"),
        )
        assert_same_report(serial_report, report)
        assert report.dispatch.workers_lost == 1
        assert report.fault_log.count("worker-lost") >= 1
        assert report.dispatch.transports == ["socket"]

    def test_external_sigkill_mid_solve(self, kbp, serial_report, spawn_worker):
        """A daemon SIGKILLed from outside (no fault plan involved)."""
        procs = [spawn_worker(f"w{i}") for i in range(2)]
        addrs = [addr for _, addr in procs]
        # Stretch the solve so the kill lands mid-flight.
        plan = NetworkFaultPlan.parse(
            ";".join(f"delay@{i}:seconds=0.3" for i in range(8))
        )
        killer = threading.Timer(0.4, procs[0][0].kill)
        killer.start()
        try:
            report = solve_si_parallel(
                kbp, remote_workers=addrs, fault_plan=plan
            )
        finally:
            killer.cancel()
        assert_same_report(serial_report, report)
        assert report.dispatch.transports == ["socket"]

    def test_losing_every_daemon_degrades_to_local(
        self, kbp, serial_report, spawn_worker
    ):
        """One daemon, killed by its first shard: the pool is broken, the
        respawn finds the socket fleet gone and degrades to a local pool —
        with the incident on the log, never silently."""
        _, addr = spawn_worker()
        report = solve_si_parallel(
            kbp,
            remote_workers=[addr],
            fault_plan=NetworkFaultPlan.parse("crash@0"),
        )
        assert_same_report(serial_report, report)
        assert report.fault_log.count("degraded-to-local") >= 1
        assert "local" in report.dispatch.transports


# ----------------------------------------------------------------------
# coordinator death: journal resume with workers re-attaching
# ----------------------------------------------------------------------


class TestCoordinatorResume:
    def test_kill_and_resume_with_remote_workers(
        self, kbp, spawn_worker, tmp_path
    ):
        reference = solve_si(kbp, parallel="never", emit_certificate=True)
        addrs = [spawn_worker(f"w{i}")[1] for i in range(2)]
        journal = tmp_path / "solve.journal"
        with pytest.raises(SimulatedKill):
            solve_si_parallel(
                kbp,
                remote_workers=addrs,
                emit_certificate=True,
                checkpoint=journal,
                fault_plan=NetworkFaultPlan.parse("kill@2"),
            )
        summary = verify_journal(journal)
        assert summary["shards_journaled"] == 2
        assert not summary["complete"]

        resumed = solve_si_parallel(
            kbp, remote_workers=addrs, emit_certificate=True, checkpoint=journal
        )
        assert canonical_dumps(resumed.certificate.to_payload()) == (
            canonical_dumps(reference.certificate.to_payload())
        )
        assert resumed.fault_log.shards_resumed == 2
        assert resumed.dispatch.transports == ["socket"]
        assert verify_journal(journal)["complete"]
