"""The shard journal: chaining, resume, torn tails, tamper evidence."""

from __future__ import annotations

import json

import pytest

from repro.robustness import (
    JOURNAL_FORMAT,
    JournalError,
    ShardJournal,
    ShardRecord,
    SimulatedKill,
    verify_journal,
)

HEADER = {
    "program": {"name": "toy", "digest": "sha256:00"},
    "base_mask": 1,
    "low_positions": [1, 2],
    "high_positions": [3],
    "shard_count": 2,
    "emit_certificate": False,
    "batch_size": 64,
}


def record(index: int, fixed: int = 0) -> ShardRecord:
    return ShardRecord(
        index=index, fixed_mask=fixed, solutions=(1, 3), checked=4
    )


class TestAppendAndResume:
    def test_fresh_journal_then_resume(self, tmp_path):
        path = tmp_path / "solve.journal"
        journal = ShardJournal(path)
        assert journal.open(HEADER) == {}
        assert journal.append(record(0)) == 1
        assert journal.append(record(1, fixed=8)) == 2

        resumed = ShardJournal(path).open(HEADER)
        assert sorted(resumed) == [0, 1]
        assert resumed[1].fixed_mask == 8
        assert resumed[0].solutions == (1, 3)
        assert resumed[0].checked == 4

    def test_resume_continues_the_chain(self, tmp_path):
        path = tmp_path / "solve.journal"
        first = ShardJournal(path)
        first.open(HEADER)
        first.append(record(0))
        second = ShardJournal(path)
        second.open(HEADER)
        second.append(record(1))
        # The chain appended across two sessions must verify as one.
        summary = verify_journal(path)
        assert summary["shards_journaled"] == 2
        assert summary["complete"] is True
        assert summary["candidates_checked"] == 8

    def test_header_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "solve.journal"
        ShardJournal(path).open(HEADER)
        other = dict(HEADER, batch_size=128)
        with pytest.raises(JournalError, match="different solve"):
            ShardJournal(path).open(other)

    def test_duplicate_shard_rejected(self, tmp_path):
        path = tmp_path / "solve.journal"
        journal = ShardJournal(path)
        journal.open(HEADER)
        journal.append(record(0))
        journal.append(record(0))
        with pytest.raises(JournalError, match="twice"):
            ShardJournal(path).open(HEADER)


class TestDamage:
    def _journal_with_two_records(self, tmp_path):
        path = tmp_path / "solve.journal"
        journal = ShardJournal(path)
        journal.open(HEADER)
        journal.append(record(0))
        journal.append(record(1))
        return path

    def test_torn_tail_is_discarded(self, tmp_path):
        path = self._journal_with_two_records(tmp_path)
        text = path.read_text()
        lines = text.rstrip("\n").split("\n")
        torn = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        path.write_text(torn)
        resumed = ShardJournal(path).open(HEADER)
        assert sorted(resumed) == [0]  # the torn record is simply re-swept

    def test_tear_next_writes_half_a_line_and_kills(self, tmp_path):
        path = tmp_path / "solve.journal"
        journal = ShardJournal(path)
        journal.open(HEADER)
        journal.append(record(0))
        journal.tear_next = True
        with pytest.raises(SimulatedKill):
            journal.append(record(1))
        resumed = ShardJournal(path).open(HEADER)
        assert sorted(resumed) == [0]

    def test_midfile_corruption_raises(self, tmp_path):
        path = self._journal_with_two_records(tmp_path)
        lines = path.read_text().rstrip("\n").split("\n")
        lines[1] = lines[1][: len(lines[1]) // 2]  # damage a NON-final line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt at line 2"):
            ShardJournal(path).open(HEADER)

    def test_edited_record_breaks_the_chain(self, tmp_path):
        path = self._journal_with_two_records(tmp_path)
        lines = path.read_text().rstrip("\n").split("\n")
        doc = json.loads(lines[1])
        doc["checked"] = 9999  # forge a count, keep the old chain digest
        lines[1] = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="chain digest broken"):
            verify_journal(path)

    def test_reordered_records_break_the_chain(self, tmp_path):
        path = self._journal_with_two_records(tmp_path)
        lines = path.read_text().rstrip("\n").split("\n")
        lines[1], lines[2] = lines[2], lines[1]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError):
            verify_journal(path)

    def test_wrong_format_tag_rejected(self, tmp_path):
        path = tmp_path / "solve.journal"
        ShardJournal(path).open(HEADER)
        text = path.read_text().replace(JOURNAL_FORMAT, "other-format/v9")
        path.write_text(text)
        with pytest.raises(JournalError):
            ShardJournal(path).open(HEADER)


class TestVerifyJournal:
    def test_summary_shape(self, tmp_path):
        path = tmp_path / "solve.journal"
        journal = ShardJournal(path)
        journal.open(HEADER)
        journal.append(record(0))
        summary = verify_journal(path)
        assert summary["program"] == "toy"
        assert summary["shards_journaled"] == 1
        assert summary["shard_count"] == 2
        assert summary["complete"] is False
        assert summary["solutions"] == [1, 3]

    def test_missing_file(self, tmp_path):
        with pytest.raises(JournalError, match="not a file"):
            verify_journal(tmp_path / "absent.journal")
