"""The chaos matrix: solve results must be invariant under every fault.

Each test injects a deterministic fault schedule into a real sharded solve
(real fork workers, real pool breakage) and asserts the *solver-level*
invariants: the same sorted solutions, the same ``candidates_checked``,
and — for certified solves — byte-identical certificate payloads, no
matter which faults fired, which backend ran, or whether the solve was
serial, parallel, or resumed from a checkpoint after being killed.
"""

from __future__ import annotations

import pytest

from repro.certificates.canonical import canonical_dumps
from repro.core.kbp import solve_si
from repro.core.parallel import solve_si_parallel
from repro.predicates import using_backend
from repro.robustness import (
    FaultPlan,
    FaultPolicy,
    JournalError,
    ShardJournal,
    SimulatedKill,
    SolverWorkerError,
    verify_journal,
)

BACKENDS = ["int", "numpy"]


def assert_same_report(reference, report):
    assert report.candidates_checked == reference.candidates_checked
    assert tuple(p.mask for p in report.solutions) == tuple(
        p.mask for p in reference.solutions
    )


# ----------------------------------------------------------------------
# worker crashes
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_crash_recovery(kbp, serial_report, backend):
    """A crashed worker loses its lease; the supervisor re-dispatches."""
    with using_backend(backend):
        report = solve_si_parallel(
            kbp, workers=2, fault_plan=FaultPlan.parse("crash@1")
        )
    assert_same_report(serial_report, report)
    log = report.fault_log
    assert log.count("worker-crash") >= 1
    assert log.count("pool-respawn") >= 1
    assert log.count("retry") >= 1


def test_crash_exhaustion_degrades_to_serial(kbp, serial_report):
    """A shard that keeps crashing is finished by the in-process sweep."""
    report = solve_si_parallel(
        kbp,
        workers=2,
        fault_plan=FaultPlan.parse("crash@0:times=50"),
        fault_policy=FaultPolicy(max_retries=1),
    )
    assert_same_report(serial_report, report)
    assert report.fault_log.count("serial-fallback") >= 1


def test_retry_budget_without_fallback_raises(kbp):
    with pytest.raises(SolverWorkerError, match="retry budget exhausted"):
        solve_si_parallel(
            kbp,
            workers=2,
            fault_plan=FaultPlan.parse("crash@0:times=50"),
            fault_policy=FaultPolicy(max_retries=1, serial_fallback=False),
        )


def test_unsupervised_broken_pool_names_the_shard(kbp):
    """Satellite: FaultPolicy.off() keeps the bare loop but a dead worker
    raises SolverWorkerError (shard mask, progress counts) instead of a raw
    BrokenProcessPool traceback."""
    with pytest.raises(SolverWorkerError) as excinfo:
        solve_si_parallel(
            kbp,
            workers=2,
            fault_plan=FaultPlan.parse("crash@0:times=50"),
            fault_policy=FaultPolicy.off(),
        )
    err = excinfo.value
    assert "fixed-bit mask" in str(err)
    assert err.pending >= 1


# ----------------------------------------------------------------------
# hangs and delays
# ----------------------------------------------------------------------


def test_hung_shard_hits_deadline_and_recovers(kbp, serial_report):
    report = solve_si_parallel(
        kbp,
        workers=2,
        fault_plan=FaultPlan.parse("hang@0:seconds=60"),
        fault_policy=FaultPolicy(shard_deadline=0.75),
    )
    assert_same_report(serial_report, report)
    log = report.fault_log
    assert log.count("shard-timeout") >= 1
    assert log.count("pool-respawn") >= 1


def test_delayed_result_is_still_correct(kbp, serial_report):
    report = solve_si_parallel(
        kbp, workers=2, fault_plan=FaultPlan.parse("delay@1:seconds=0.2")
    )
    assert_same_report(serial_report, report)
    # A late-but-valid result is not an incident.
    assert report.fault_log.clean


def test_fault_plan_from_environment(kbp, serial_report, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_PLAN", "crash@2")
    report = solve_si_parallel(kbp, workers=2)
    assert_same_report(serial_report, report)
    assert report.fault_log.count("worker-crash") >= 1


# ----------------------------------------------------------------------
# checkpoint / kill / resume
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_kill_and_resume_certified(kbp, backend, tmp_path):
    """The acceptance invariant: kill mid-solve, resume from the journal,
    get byte-identical certificates — and provably without re-sweeping the
    journaled shards (candidates_checked accounting)."""
    with using_backend(backend):
        reference = solve_si(kbp, emit_certificate=True, parallel="never")
        journal_path = tmp_path / f"solve-{backend}.journal"
        with pytest.raises(SimulatedKill):
            solve_si_parallel(
                kbp,
                workers=2,
                emit_certificate=True,
                checkpoint=journal_path,
                fault_plan=FaultPlan.parse("kill@2"),
            )
        summary = verify_journal(journal_path)
        assert summary["shards_journaled"] == 2
        assert not summary["complete"]
        journaled_work = summary["candidates_checked"]

        resumed = solve_si_parallel(
            kbp, workers=2, emit_certificate=True, checkpoint=journal_path
        )
    assert_same_report(reference, resumed)
    assert canonical_dumps(resumed.certificate.to_payload()) == canonical_dumps(
        reference.certificate.to_payload()
    )
    log = resumed.fault_log
    assert log.shards_resumed == 2
    # Resume-without-recheck: the journaled candidates were *loaded*, not
    # re-swept — what the resume counts as resumed is exactly what the
    # journal recorded, and the total still tiles the lattice exactly once.
    assert log.candidates_resumed == journaled_work > 0
    assert resumed.candidates_checked == reference.candidates_checked
    assert (
        resumed.candidates_checked - log.candidates_resumed
        < reference.candidates_checked
    )
    # And the finished journal now covers every shard.
    assert verify_journal(journal_path)["complete"]


def test_torn_journal_record_is_reswept(kbp, serial_report, tmp_path):
    """A crash mid-append leaves half a line; resume discards it and
    re-sweeps only that shard."""
    journal_path = tmp_path / "solve.journal"
    with pytest.raises(SimulatedKill):
        solve_si_parallel(
            kbp,
            workers=2,
            checkpoint=journal_path,
            fault_plan=FaultPlan.parse("torn@2"),
        )
    resumed = solve_si_parallel(kbp, workers=2, checkpoint=journal_path)
    assert_same_report(serial_report, resumed)
    assert resumed.fault_log.shards_resumed == 1  # the torn record is gone


def test_corrupted_journal_refuses_resume(kbp, tmp_path):
    journal_path = tmp_path / "solve.journal"
    with pytest.raises(SimulatedKill):
        solve_si_parallel(
            kbp,
            workers=2,
            checkpoint=journal_path,
            fault_plan=FaultPlan.parse("kill@3"),
        )
    lines = journal_path.read_text().rstrip("\n").split("\n")
    assert len(lines) == 4  # header + 3 records
    lines[1] = lines[1][: len(lines[1]) // 2]  # damage a non-final record
    journal_path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalError):
        solve_si_parallel(kbp, workers=2, checkpoint=journal_path)


def test_resume_with_crash_during_fresh_shards(kbp, serial_report, tmp_path):
    """Faults compose: resume from a checkpoint while a fresh shard crashes."""
    journal_path = tmp_path / "solve.journal"
    with pytest.raises(SimulatedKill):
        solve_si_parallel(
            kbp,
            workers=2,
            checkpoint=journal_path,
            fault_plan=FaultPlan.parse("kill@2"),
        )
    resumed = solve_si_parallel(
        kbp,
        workers=2,
        checkpoint=journal_path,
        fault_plan=FaultPlan.parse("crash@7"),
    )
    assert_same_report(serial_report, resumed)
    assert resumed.fault_log.shards_resumed == 2


def test_workers_one_checkpoints_too(kbp, serial_report, tmp_path):
    """The in-process path runs the same journal bookkeeping."""
    journal_path = tmp_path / "solve.journal"
    with pytest.raises(SimulatedKill):
        solve_si_parallel(
            kbp,
            workers=1,
            checkpoint=journal_path,
            fault_plan=FaultPlan.parse("kill@3"),
        )
    resumed = solve_si_parallel(kbp, workers=1, checkpoint=journal_path)
    assert_same_report(serial_report, resumed)
    assert resumed.fault_log.shards_resumed == 3


# ----------------------------------------------------------------------
# seeded chaos schedules
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [3, 11])
def test_seeded_chaos_schedule(kbp, serial_report, seed):
    report = solve_si_parallel(
        kbp,
        workers=2,
        fault_plan=FaultPlan.parse(f"chaos@{seed}:crash=2:hang=1:seconds=60"),
        fault_policy=FaultPolicy(shard_deadline=0.75),
    )
    assert_same_report(serial_report, report)
    assert not report.fault_log.clean


@pytest.mark.parametrize("backend", BACKENDS)
def test_serial_parallel_resumed_identity(kbp, backend, tmp_path):
    """The three-way identity the whole subsystem promises."""
    with using_backend(backend):
        serial = solve_si(kbp, parallel="never")
        parallel = solve_si_parallel(kbp, workers=2)
        journal_path = tmp_path / f"ident-{backend}.journal"
        with pytest.raises(SimulatedKill):
            solve_si_parallel(
                kbp,
                workers=2,
                checkpoint=journal_path,
                fault_plan=FaultPlan.parse("kill@4"),
            )
        resumed = solve_si_parallel(kbp, workers=2, checkpoint=journal_path)
    assert_same_report(serial, parallel)
    assert_same_report(serial, resumed)


# ----------------------------------------------------------------------
# API guards and plumbing
# ----------------------------------------------------------------------


def test_checkpoint_needs_complete_sweep(kbp, tmp_path):
    with pytest.raises(ValueError, match="complete sweep"):
        solve_si_parallel(
            kbp, workers=2, any_solution=True, checkpoint=tmp_path / "j"
        )


def test_checkpoint_needs_supervision(kbp, tmp_path):
    with pytest.raises(ValueError, match="supervised"):
        solve_si_parallel(
            kbp,
            workers=2,
            checkpoint=tmp_path / "j",
            fault_policy=FaultPolicy.off(),
        )


def test_checkpoint_rejected_for_standard_programs(tmp_path):
    from ..conftest import make_counter_program

    with pytest.raises(ValueError, match="knowledge-based"):
        solve_si_parallel(
            make_counter_program(), checkpoint=tmp_path / "j"
        )


def test_solve_si_rejects_robustness_with_parallel_never(kbp, tmp_path):
    with pytest.raises(ValueError, match='parallel="never"'):
        solve_si(kbp, parallel="never", checkpoint=tmp_path / "j")


def test_solve_si_forwards_fault_options(kbp, serial_report, tmp_path):
    """Passing fault_policy/checkpoint through solve_si forces the sharded
    route (the program is below the auto threshold) and returns a report
    carrying the fault log."""
    report = solve_si(
        kbp,
        workers=2,
        fault_policy=FaultPolicy(max_retries=1),
        checkpoint=tmp_path / "solve.journal",
    )
    assert_same_report(serial_report, report)
    assert report.fault_log is not None
    assert verify_journal(tmp_path / "solve.journal")["complete"]


def test_journal_accepted_by_replay_cli(kbp, tmp_path, capsys):
    from repro.certificates.replay import main

    journal_path = tmp_path / "solve.journal"
    solve_si_parallel(kbp, workers=2, checkpoint=journal_path)
    assert main([str(tmp_path), "--journal", str(journal_path)]) == 0
    out = capsys.readouterr().out
    assert "chain verified" in out

    # A forged journal is rejected through the same CLI.
    lines = journal_path.read_text().rstrip("\n").split("\n")
    lines[1], lines[2] = lines[2], lines[1]
    journal_path.write_text("\n".join(lines) + "\n")
    assert main([str(tmp_path), "--journal", str(journal_path)]) == 1


def test_existing_journal_object_can_be_passed(kbp, serial_report, tmp_path):
    journal = ShardJournal(tmp_path / "solve.journal")
    report = solve_si_parallel(kbp, workers=2, checkpoint=journal)
    assert_same_report(serial_report, report)
