"""The fault-plan grammar rejects malformed plans with a named error."""

import pytest

from repro.robustness import FaultPlan, FaultPlanError


class TestFaultPlanGrammar:
    def test_valid_plans_parse(self):
        plan = FaultPlan.parse("crash@2:times=3;kill@1;torn@0", scratch="/tmp/x")
        assert [c.kind for c in plan.clauses] == ["crash", "kill", "torn"]
        assert plan.clauses[0].times == 3

    def test_unknown_kind_names_valid_kinds(self):
        with pytest.raises(FaultPlanError) as exc:
            FaultPlan.parse("explode@2")
        message = str(exc.value)
        assert "explode" in message
        # The error lists every valid action, so the fix is in the message.
        for kind in ("crash", "hang", "delay", "kill", "torn", "chaos"):
            assert kind in message

    def test_missing_at_is_rejected(self):
        with pytest.raises(FaultPlanError, match="no '@'"):
            FaultPlan.parse("crash2")

    def test_non_integer_target(self):
        with pytest.raises(FaultPlanError, match="non-integer"):
            FaultPlan.parse("crash@two")

    def test_malformed_parameter(self):
        with pytest.raises(FaultPlanError, match="not k=v"):
            FaultPlan.parse("crash@2:times")

    def test_non_numeric_parameter(self):
        with pytest.raises(FaultPlanError, match="not numeric"):
            FaultPlan.parse("hang@0:seconds=lots")

    def test_is_a_value_error(self):
        # Backward compatibility: older callers catch ValueError.
        with pytest.raises(ValueError):
            FaultPlan.parse("explode@2")
