"""Livelock vs. slow progress: the watchdog's evidence-based verdicts."""

import pytest

from repro.predicates import Predicate
from repro.sim import (
    FIXED_POINT,
    LIVELOCK,
    REACHED,
    SLOW_PROGRESS,
    Executor,
    StarvationScheduler,
    Watchdog,
    supervise_run,
)
from repro.statespace import IntRangeDomain, space_of
from repro.unity import Program, Statement, const, var

from ..conftest import make_counter_program


def make_livelock_program() -> Program:
    """Injected livelock: once started, ``phase`` cycles 1 → 2 → 0 → 1 forever.

    Every reachable state is part of (or leads into) a goal-free cycle that
    is closed under *all* statements — the canonical livelock, detectable
    by certificate rather than by timeout.
    """
    space = space_of(phase=IntRangeDomain(0, 2))
    statements = [
        Statement(
            name="spin",
            targets=("phase",),
            exprs=((var("phase") + const(1)) % const(3),),
        ),
    ]
    init = Predicate.from_callable(space, lambda s: s["phase"] == 0)
    return Program(
        space=space,
        init=init,
        statements=statements,
        processes={"P": ("phase",)},
        name="livelock-fixture",
    )


def never(program):
    return Predicate.false(program.space)


class TestVerdicts:
    def test_reached(self):
        program = make_counter_program()
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        wd = Watchdog()
        result = Executor(program, seed=1).run(goal, max_steps=5000, watchdog=wd)
        assert result.reached
        assert result.diagnosis.verdict == REACHED
        assert not result.diagnosis.provably_stuck

    def test_slow_progress_is_not_livelock(self):
        # The counter genuinely progresses toward n == 3; a tiny budget is
        # just a tiny budget, and the watchdog must say so.
        program = make_counter_program()
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        wd = Watchdog()
        result = Executor(program, seed=1).run(goal, max_steps=2, watchdog=wd)
        assert not result.reached
        assert result.diagnosis.verdict == SLOW_PROGRESS
        assert not result.diagnosis.provably_stuck

    def test_deterministic_lasso_certifies_livelock(self):
        program = make_livelock_program()
        wd = Watchdog()
        result = Executor(program, scheduler="round-robin").run(
            never(program), max_steps=10_000, watchdog=wd
        )
        assert result.diagnosis.verdict == LIVELOCK
        assert result.diagnosis.lasso_kind == "deterministic-cycle"
        assert result.diagnosis.provably_stuck
        # Caught at the first revisit, orders of magnitude before the budget.
        assert result.steps < 20
        assert len(result.diagnosis.lasso) == 3

    def test_closed_trap_certifies_livelock_under_random_scheduler(self):
        # The weighted-random scheduler exposes no state, so the lasso
        # argument is unavailable — the scheduler-independent closed-trap
        # certificate catches the livelock instead.
        program = make_livelock_program()
        wd = Watchdog(novelty_window=16, trap_check_interval=8)
        result = Executor(program, seed=5).run(
            never(program), max_steps=10_000, watchdog=wd
        )
        assert result.diagnosis.verdict == LIVELOCK
        assert result.diagnosis.lasso_kind == "closed-trap"
        assert result.steps < 10_000

    def test_fixed_point(self):
        # Once the counter saturates (go, n=3), every statement maps the
        # state to itself: a one-state closed trap.
        program = make_counter_program()
        # Window of 1: only the saturated state itself can certify.
        wd = Watchdog(novelty_window=1, trap_check_interval=4)
        result = Executor(program, seed=1).run(
            never(program), max_steps=10_000, watchdog=wd
        )
        assert result.diagnosis.verdict == FIXED_POINT
        assert len(result.diagnosis.lasso) == 1
        assert result.diagnosis.provably_stuck

    def test_starvation_detection(self):
        program = make_counter_program()
        wd = Watchdog(starvation_window=50, novelty_window=4, trap_check_interval=1000)
        sched = StarvationScheduler("tick", window=300)
        result = Executor(program, scheduler=sched).run(
            never(program), max_steps=250, watchdog=wd
        )
        assert "tick" in result.diagnosis.starved


class TestSupervision:
    def test_escalates_until_reached(self):
        program = make_counter_program()
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        result = supervise_run(
            Executor(program, seed=1), goal, budgets=(2, 2, 5000)
        )
        assert result.reached
        assert result.diagnosis.verdict == REACHED
        assert result.diagnosis.budget_escalations == (2, 2, 5000)
        assert result.steps > 4

    def test_livelock_stops_escalation_early(self):
        program = make_livelock_program()
        result = supervise_run(
            Executor(program, scheduler="round-robin"),
            never(program),
            budgets=(100, 1_000_000),
        )
        assert result.diagnosis.verdict == LIVELOCK
        # The second (huge) budget was never spent: the verdict is final.
        assert result.diagnosis.budget_escalations == (100,)
        assert result.steps < 100

    def test_exhausted_budgets_report_slow_progress(self):
        program = make_counter_program()
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        result = supervise_run(Executor(program, seed=1), goal, budgets=(1, 1))
        assert not result.reached
        assert result.diagnosis.verdict == SLOW_PROGRESS
        assert result.diagnosis.budget_escalations == (1, 1)

    def test_needs_a_budget(self):
        program = make_counter_program()
        with pytest.raises(ValueError):
            supervise_run(Executor(program), never(program), budgets=())
