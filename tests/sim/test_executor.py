"""The randomized fair executor and message counting."""

import pytest

from repro.predicates import Predicate
from repro.sim import Executor, average_messages
from repro.statespace import BoolDomain, space_of
from repro.unity import Program, assign, const, var

from ..conftest import make_counter_program


@pytest.fixture
def program():
    return make_counter_program()


class TestExecutor:
    def test_reaches_goal_under_fairness(self, program):
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        result = Executor(program, seed=1).run(goal, max_steps=5000)
        assert result.reached
        assert result.final_state["n"] == 3

    def test_counts_effective_firings(self, program):
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        result = Executor(program, seed=2).run(goal, max_steps=5000)
        # Exactly 3 effective ticks move n from 0 to 3.
        assert result.fired["tick"] == 3
        assert result.attempted["tick"] >= result.fired["tick"]
        # `start`'s guard is `true`: every attempt counts as a firing (the
        # semantics retransmission counting needs — identical resends count).
        assert result.fired["start"] == result.attempted["start"] >= 1

    def test_deterministic_per_seed(self, program):
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        a = Executor(program, seed=42).run(goal)
        b = Executor(program, seed=42).run(goal)
        assert a.steps == b.steps
        assert a.fired == b.fired

    def test_callable_goal(self, program):
        result = Executor(program, seed=0).run(lambda s: s["n"] >= 2, max_steps=5000)
        assert result.reached

    def test_max_steps_respected(self, program):
        never = Predicate.false(program.space)
        result = Executor(program, seed=0).run(never, max_steps=50)
        assert not result.reached
        assert result.steps == 50

    def test_weights_steer_scheduling(self, program):
        goal = Predicate.false(program.space)
        heavy = Executor(program, weights={"tick": 100.0, "start": 1.0}, seed=3)
        result = heavy.run(goal, max_steps=2000)
        assert result.attempted["tick"] > result.attempted["start"] * 5

    def test_weight_validation(self, program):
        with pytest.raises(ValueError):
            Executor(program, weights={"tick": -1.0})
        with pytest.raises(ValueError):
            Executor(program, weights={"tick": 0.0, "start": 0.0})

    def test_knowledge_based_program_rejected(self):
        from repro.figures import fig1_program

        with pytest.raises(ValueError):
            Executor(fig1_program())

    def test_messages_helper(self, program):
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        result = Executor(program, seed=5).run(goal, max_steps=5000)
        assert result.messages(["tick"]) == 3
        assert result.messages(["tick", "start"]) == 3 + result.fired["start"]


class TestAverageMessages:
    def test_aggregates_over_seeds(self, program):
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        stats = average_messages(
            program, goal, ["tick"], runs=5, seed=0, max_steps=5000
        )
        assert stats["completed"] == 1.0
        assert stats["messages"] == 3.0
        assert stats["steps"] > 0

    def test_incomplete_runs_reported(self, program):
        goal = Predicate.false(program.space)
        stats = average_messages(program, goal, ["tick"], runs=3, seed=0, max_steps=20)
        assert stats["completed"] == 0.0
