"""The randomized fair executor and message counting."""

import pytest

from repro.predicates import Predicate
from repro.sim import Executor, average_messages, replay_run, weights_fingerprint
from repro.statespace import BoolDomain, space_of
from repro.unity import Program, assign, const, var

from ..conftest import make_counter_program


@pytest.fixture
def program():
    return make_counter_program()


class TestExecutor:
    def test_reaches_goal_under_fairness(self, program):
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        result = Executor(program, seed=1).run(goal, max_steps=5000)
        assert result.reached
        assert result.final_state["n"] == 3

    def test_counts_effective_firings(self, program):
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        result = Executor(program, seed=2).run(goal, max_steps=5000)
        # Exactly 3 effective ticks move n from 0 to 3.
        assert result.fired["tick"] == 3
        assert result.attempted["tick"] >= result.fired["tick"]
        # `start`'s guard is `true`: every attempt counts as a firing (the
        # semantics retransmission counting needs — identical resends count).
        assert result.fired["start"] == result.attempted["start"] >= 1

    def test_deterministic_per_seed(self, program):
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        a = Executor(program, seed=42).run(goal)
        b = Executor(program, seed=42).run(goal)
        assert a.steps == b.steps
        assert a.fired == b.fired

    def test_callable_goal(self, program):
        result = Executor(program, seed=0).run(lambda s: s["n"] >= 2, max_steps=5000)
        assert result.reached

    def test_max_steps_respected(self, program):
        never = Predicate.false(program.space)
        result = Executor(program, seed=0).run(never, max_steps=50)
        assert not result.reached
        assert result.steps == 50

    def test_weights_steer_scheduling(self, program):
        goal = Predicate.false(program.space)
        heavy = Executor(program, weights={"tick": 100.0, "start": 1.0}, seed=3)
        result = heavy.run(goal, max_steps=2000)
        assert result.attempted["tick"] > result.attempted["start"] * 5

    def test_weight_validation(self, program):
        with pytest.raises(ValueError):
            Executor(program, weights={"tick": -1.0})
        with pytest.raises(ValueError):
            Executor(program, weights={"tick": 0.0, "start": 0.0})

    def test_knowledge_based_program_rejected(self):
        from repro.figures import fig1_program

        with pytest.raises(ValueError):
            Executor(fig1_program())

    def test_messages_helper(self, program):
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        result = Executor(program, seed=5).run(goal, max_steps=5000)
        assert result.messages(["tick"]) == 3
        assert result.messages(["tick", "start"]) == 3 + result.fired["start"]


class TestReplayableResults:
    def test_result_records_scheduler_provenance(self, program):
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        executor = Executor(program, weights={"tick": 2.0}, seed=9)
        result = executor.run(goal, max_steps=5000)
        assert result.seed == 9
        assert result.weights == {"tick": 2.0, "start": 1.0}
        assert result.weights_fingerprint == executor.weights_fingerprint
        assert result.start_index is not None
        assert result.max_steps == 5000

    def test_fingerprint_distinguishes_weight_tables(self, program):
        plain = Executor(program, seed=0).weights_fingerprint
        heavy = Executor(program, weights={"tick": 3.0}, seed=0)
        assert heavy.weights_fingerprint != plain
        assert weights_fingerprint(["a"], [1.0]) != weights_fingerprint(
            ["a"], [2.0]
        )

    def test_replay_reproduces_run_exactly(self, program):
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        original = Executor(program, seed=7).run(goal, max_steps=5000)
        replayed = replay_run(program, original, goal)
        assert replayed.reached == original.reached
        assert replayed.steps == original.steps
        assert replayed.fired == original.fired
        assert replayed.attempted == original.attempted
        assert replayed.final_state.index == original.final_state.index

    def test_replay_of_reused_executor_run(self, program):
        """A second run's RNG stream starts mid-seed; replay must capture it."""
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        executor = Executor(program, seed=11)
        first = executor.run(goal, max_steps=5000)
        second = executor.run(goal, max_steps=5000)
        replayed = replay_run(program, second, goal)
        assert replayed.fired == second.fired
        assert replayed.steps == second.steps
        # Sanity: the two original runs were genuinely different draws.
        assert (first.steps, first.start_index) != (
            second.steps,
            second.start_index,
        ) or first.rng_state != second.rng_state

    def test_replay_rejects_mismatched_goal(self, program):
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        other = Predicate.from_callable(program.space, lambda s: s["n"] == 2)
        result = Executor(program, seed=3).run(goal, max_steps=5000)
        with pytest.raises(ValueError, match="goal mismatch"):
            replay_run(program, result, other)

    def test_replay_rejects_mismatched_program(self, program):
        from dataclasses import replace

        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        result = Executor(program, seed=3).run(goal, max_steps=5000)
        renamed = Program(
            space=program.space,
            init=program.init,
            statements=[
                replace(s, name=f"other_{s.name}") for s in program.statements
            ],
            name="renamed",
        )
        with pytest.raises(ValueError, match="no longer matches"):
            replay_run(renamed, result, goal)


class TestAverageMessages:
    def test_aggregates_over_seeds(self, program):
        goal = Predicate.from_callable(program.space, lambda s: s["n"] == 3)
        stats = average_messages(
            program, goal, ["tick"], runs=5, seed=0, max_steps=5000
        )
        assert stats["completed"] == 1.0
        assert stats["messages"] == 3.0
        assert stats["steps"] > 0

    def test_incomplete_runs_reported(self, program):
        goal = Predicate.false(program.space)
        stats = average_messages(program, goal, ["tick"], runs=3, seed=0, max_steps=20)
        assert stats["completed"] == 0.0

    def test_no_completed_runs_yield_nan_means(self, program):
        import math

        # A mean of 0 messages over 0 completed runs would dress total
        # failure up as a perfect protocol; NaN is unmistakable.
        goal = Predicate.false(program.space)
        stats = average_messages(program, goal, ["tick"], runs=3, seed=0, max_steps=20)
        assert math.isnan(stats["messages"])
        assert math.isnan(stats["steps"])


class TestInitialStateCache:
    def test_init_indices_materialized_once(self, program):
        executor = Executor(program, seed=0)
        assert executor._init_indices is None
        executor.initial_state()
        cached = executor._init_indices
        assert cached is not None
        executor.initial_state()
        assert executor._init_indices is cached

    def test_cached_draws_match_init(self, program):
        executor = Executor(program, seed=0)
        for _ in range(10):
            state = executor.initial_state()
            assert program.init.holds_at(state.index)
