"""Scheduler strategies, spec round-trips, and fairness certification."""

import pytest

from repro.predicates import Predicate
from repro.seqtrans import (
    LOSSY,
    SeqTransParams,
    bounded_loss,
    build_standard_protocol,
    delivered_all,
)
from repro.sim import (
    Executor,
    FairnessMonitor,
    GreedyHostileScheduler,
    RoundRobinScheduler,
    StarvationScheduler,
    WeightedRandomScheduler,
    replay_run,
    scheduler_from_spec,
)

from ..conftest import make_counter_program

PARAMS = SeqTransParams(length=1, alphabet=("a", "b"))


def counter_goal(program):
    return Predicate.from_callable(program.space, lambda s: s["n"] == 3)


class TestSpecRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [
            "weighted-random",
            "round-robin",
            "demonic-starve:tick:window=8",
            "greedy-loss",
            "greedy-loss:prefixes=lose_,drop_",
        ],
    )
    def test_round_trip(self, spec):
        assert scheduler_from_spec(spec).spec == spec

    def test_default_starve_window(self):
        sched = scheduler_from_spec("demonic-starve:tick")
        assert isinstance(sched, StarvationScheduler)
        assert sched.window == 64

    def test_bad_specs(self):
        for bad in ("demonic-starve", "greedy-loss:budget=3", "chaotic", ""):
            with pytest.raises(ValueError):
                scheduler_from_spec(bad)

    def test_unknown_starvation_target_rejected_at_bind(self):
        program = make_counter_program()
        with pytest.raises(ValueError, match="starvation target"):
            Executor(program, scheduler=StarvationScheduler("nope"))


class TestStrategies:
    def test_weighted_random_is_default_and_stream_compatible(self):
        program = make_counter_program()
        default = Executor(program, seed=7).run(counter_goal(program))
        explicit = Executor(
            program, seed=7, scheduler=WeightedRandomScheduler()
        ).run(counter_goal(program))
        assert default.steps == explicit.steps
        assert default.scheduler == "weighted-random"

    def test_round_robin_is_deterministic(self):
        program = make_counter_program()
        runs = [
            Executor(program, seed=s, scheduler=RoundRobinScheduler()).run(
                counter_goal(program)
            )
            for s in (0, 1)
        ]
        # Seed-independent: the schedule never consults the RNG.
        assert runs[0].steps == runs[1].steps
        assert runs[0].fired == runs[1].fired

    def test_starvation_delays_target(self):
        program = make_counter_program()
        sched = StarvationScheduler("tick", window=16)
        result = Executor(program, scheduler=sched).run(
            counter_goal(program), max_steps=500
        )
        assert result.reached
        # tick is attempted only once per window.
        assert result.attempted["tick"] * 8 <= result.attempted["start"]

    def test_greedy_loss_refutes_lossy_liveness(self):
        # E13 with the adversary made executable: on the unrestricted LOSSY
        # channel the greedy scheduler loses every message and the protocol
        # never delivers, despite the schedule being fair.
        program = build_standard_protocol(PARAMS, LOSSY)
        goal = delivered_all(program.space, PARAMS)
        result = Executor(program, scheduler=GreedyHostileScheduler()).run(
            goal, max_steps=4000
        )
        assert not result.reached
        assert result.fired["lose_data"] > 0

    def test_greedy_loss_cannot_beat_bounded_loss(self):
        # Same adversary, bounded-loss channel: the budget dries up between
        # successful receives and delivery goes through.
        program = build_standard_protocol(PARAMS, bounded_loss(1))
        goal = delivered_all(program.space, PARAMS)
        result = Executor(program, scheduler=GreedyHostileScheduler()).run(
            goal, max_steps=20000
        )
        assert result.reached


class TestReplayWithSchedulers:
    @pytest.mark.parametrize(
        "scheduler",
        ["round-robin", "demonic-starve:tick:window=8", "greedy-loss"],
    )
    def test_replay_reproduces_run(self, scheduler):
        program = make_counter_program()
        goal = counter_goal(program)
        executor = Executor(program, scheduler=scheduler)
        result = executor.run(goal, max_steps=200)
        again = replay_run(program, result, goal)
        assert again.steps == result.steps
        assert again.fired == result.fired
        assert again.scheduler == scheduler


class TestFairnessMonitor:
    def test_certifies_uniform_schedule(self):
        monitor = FairnessMonitor(window=4)
        monitor.begin(["a", "b"])
        for step in range(20):
            monitor.note(step, step % 2)
        report = monitor.report()
        assert report.certified
        assert report.max_gaps == {"a": 1, "b": 1}

    def test_flags_starved_statement(self):
        monitor = FairnessMonitor(window=4)
        monitor.begin(["a", "b"])
        for step in range(20):
            monitor.note(step, 0)  # never attempts b
        report = monitor.report()
        assert not report.certified
        assert report.violations == ("b",)
        assert report.max_gaps["b"] == 20

    def test_counts_trailing_gap(self):
        monitor = FairnessMonitor(window=2)
        monitor.begin(["a", "b"])
        monitor.note(0, 1)
        for step in range(1, 8):
            monitor.note(step, 0)
        assert not monitor.report().certified

    def test_executor_runs_carry_certificates(self):
        # Every non-demonic scheduler's run certifies as fair.
        program = make_counter_program()
        goal = Predicate.false(program.space)
        for spec in ("weighted-random", "round-robin"):
            from repro.sim import Watchdog

            wd = Watchdog()
            Executor(program, seed=3, scheduler=spec).run(
                goal, max_steps=500, watchdog=wd
            )
            report = wd.monitor.report()
            assert report.certified, (spec, report)
