"""The seeded soak harness: determinism, resume, and cross-checked verdicts."""

import pytest

from repro.robustness import FaultPlan, JournalError, SimulatedKill
from repro.sim import (
    DELIVERED,
    UNSAFE,
    SoakCellRecord,
    SoakConfig,
    enumerate_cells,
    quick_config,
    run_soak,
)
from repro.sim.soak import LIVELOCK_VERDICT

#: The E13 pair plus a benign baseline — the smallest matrix with a story.
E13_CONFIG = SoakConfig(
    channels=("bounded_loss:1", "lossy"),
    schedulers=("weighted-random", "greedy-loss"),
    budgets=(2_000,),
)

CRASH_CONFIG = SoakConfig(
    channels=("reliable",),
    schedulers=("weighted-random",),
    crashes=("none", "receiver"),
    budgets=(2_000,),
)


class TestMatrix:
    def test_enumeration_is_protocol_major_and_indexed(self):
        cells = enumerate_cells(E13_CONFIG)
        assert [c.index for c in cells] == list(range(len(cells)))
        assert len(cells) == 4
        # Cell keys are unique, human-readable coordinates.
        keys = {c.key for c in cells}
        assert len(keys) == 4
        assert "standard|lossy|greedy-loss|none|b2000|s0" in keys

    def test_quick_config_covers_the_e13_pair(self):
        cfg = quick_config()
        assert "lossy" in cfg.channels and "bounded_loss:1" in cfg.channels
        assert "greedy-loss" in cfg.schedulers
        assert "receiver" in cfg.crashes

    def test_digest_pins_every_axis(self):
        base = E13_CONFIG.digest()
        assert E13_CONFIG.digest() == base
        assert SoakConfig(channels=("lossy",)).digest() != base
        assert (
            SoakConfig(
                channels=E13_CONFIG.channels,
                schedulers=E13_CONFIG.schedulers,
                budgets=(3_000,),
            ).digest()
            != base
        )


class TestDeterminism:
    def test_same_config_yields_byte_identical_journals(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_soak(E13_CONFIG, a)
        run_soak(E13_CONFIG, b)
        assert a.read_bytes() == b.read_bytes()

    def test_journal_for_a_different_matrix_is_refused(self, tmp_path):
        path = tmp_path / "soak.jsonl"
        run_soak(E13_CONFIG, path)
        with pytest.raises(JournalError, match="different solve"):
            run_soak(CRASH_CONFIG, path)


class TestResume:
    def test_killed_soak_resumes_without_rerunning(self, tmp_path):
        reference = tmp_path / "ref.jsonl"
        interrupted = tmp_path / "int.jsonl"
        run_soak(E13_CONFIG, reference)

        plan = FaultPlan.parse("kill@2", scratch=str(tmp_path / "faults"))
        with pytest.raises(SimulatedKill):
            run_soak(E13_CONFIG, interrupted, fault_plan=plan)

        report = run_soak(E13_CONFIG, interrupted)
        # The two journaled cells were loaded, not re-executed.
        assert report.resumed == 2
        assert len(report.executed) == 2
        # ... and the resumed journal is byte-identical to an uninterrupted
        # run: resume costs nothing in reproducibility.
        assert interrupted.read_bytes() == reference.read_bytes()

    def test_completed_soak_reruns_nothing(self, tmp_path):
        path = tmp_path / "soak.jsonl"
        first = run_soak(E13_CONFIG, path)
        again = run_soak(E13_CONFIG, path)
        assert again.executed == ()
        assert again.resumed == first.total
        assert again.verdicts == first.verdicts


class TestVerdicts:
    @pytest.fixture(scope="class")
    def e13_report(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("soak") / "e13.jsonl"
        return run_soak(E13_CONFIG, path)

    def test_demonic_scheduler_refutes_lossy_liveness(self, e13_report):
        record = next(
            r
            for r in e13_report.records.values()
            if "lossy" in r.key and "greedy-loss" in r.key
        )
        # Not a timeout: the watchdog *proved* the livelock, and the model
        # checker agrees liveness is refutable on the unrestricted channel.
        assert record.verdict == LIVELOCK_VERDICT
        assert not all(record.expected_liveness)
        assert record.consistent

    def test_bounded_loss_survives_the_same_adversary(self, e13_report):
        record = next(
            r
            for r in e13_report.records.values()
            if "bounded_loss:1" in r.key and "greedy-loss" in r.key
        )
        assert record.verdict == DELIVERED
        assert all(record.expected_liveness)
        assert record.consistent

    def test_benign_scheduler_delivers_everywhere(self, e13_report):
        for record in e13_report.records.values():
            if "weighted-random" in record.key:
                assert record.verdict == DELIVERED
                assert record.fairness_certified

    def test_report_is_inconsistency_free(self, e13_report):
        assert e13_report.consistent
        assert e13_report.inconsistencies == ()

    def test_crash_cells_reestablish_knowledge(self, tmp_path):
        report = run_soak(CRASH_CONFIG, tmp_path / "crash.jsonl")
        crash = next(
            r for r in report.records.values() if "|receiver|" in r.key
        )
        nocrash = next(r for r in report.records.values() if "|none|" in r.key)
        # Eqs. (23)/(24): a crash erases the receiver's knowledge of x_0,
        # yet at every reachable delivered post-crash state it holds again.
        assert crash.verdict == DELIVERED
        assert crash.knowledge_reestablished is True
        assert nocrash.knowledge_reestablished is None
        assert report.consistent

    def test_unsafe_verdict_requires_model_checked_refutation(self, tmp_path):
        # The corrupting channel breaks eq. (34); the soak must observe it
        # AND find the model checker agreeing — a consistent "unsafe" cell.
        config = SoakConfig(
            channels=("corrupting:1",),
            schedulers=("greedy-loss", "weighted-random"),
            budgets=(4_000,),
        )
        report = run_soak(config, tmp_path / "corrupt.jsonl")
        greedy = next(
            r for r in report.records.values() if "greedy-loss" in r.key
        )
        assert not greedy.expected_safety
        assert greedy.verdict == UNSAFE
        assert greedy.consistent

    def test_records_round_trip_through_bodies(self):
        record = SoakCellRecord(
            index=3,
            key="standard|lossy|greedy-loss|none|b2000|s0",
            verdict=LIVELOCK_VERDICT,
            steps=412,
            expected_safety=True,
            expected_liveness=(True, False),
            consistent=True,
            fairness_certified=True,
            detail="deterministic-cycle",
        )
        assert SoakCellRecord.from_body(record.body()) == record

    def test_truncated_body_is_rejected(self):
        with pytest.raises(JournalError, match="verdict"):
            SoakCellRecord.from_body({"index": 0, "key": "x"})


class TestKbpCells:
    def test_solved_kbp_protocol_delivers(self, tmp_path):
        config = SoakConfig(
            protocols=("kbp",),
            channels=("reliable",),
            schedulers=("round-robin",),
            budgets=(2_000,),
        )
        report = run_soak(config, tmp_path / "kbp.jsonl")
        (record,) = report.records.values()
        assert record.verdict == DELIVERED
        assert report.consistent
