"""The predicate calculus on bitsets: operators, [·], and extension queries."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.predicates import Predicate, conjunction, disjunction, everywhere
from repro.statespace import BoolDomain, space_of


@pytest.fixture
def space():
    return space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())


def masks(space):
    return st.integers(min_value=0, max_value=space.full_mask)


class TestConstruction:
    def test_true_false(self, space):
        assert Predicate.true(space).count() == space.size
        assert Predicate.false(space).count() == 0

    def test_from_callable(self, space):
        p = Predicate.from_callable(space, lambda s: s["a"] and not s["b"])
        for state in space.states():
            assert p.holds_at(state) == (state["a"] and not state["b"])

    def test_from_indices(self, space):
        p = Predicate.from_indices(space, [0, 3, 5])
        assert sorted(p.indices()) == [0, 3, 5]

    def test_from_indices_out_of_range(self, space):
        with pytest.raises(IndexError):
            Predicate.from_indices(space, [space.size])

    def test_mask_out_of_range_rejected(self, space):
        with pytest.raises(ValueError):
            Predicate(space, 1 << space.size)


class TestPointwiseOperators:
    @given(data=st.data())
    def test_de_morgan(self, data):
        space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
        p = Predicate(space, data.draw(masks(space)))
        q = Predicate(space, data.draw(masks(space)))
        assert ~(p & q) == (~p | ~q)
        assert ~(p | q) == (~p & ~q)

    @given(data=st.data())
    def test_implication_definition(self, data):
        space = space_of(a=BoolDomain(), b=BoolDomain())
        p = Predicate(space, data.draw(masks(space)))
        q = Predicate(space, data.draw(masks(space)))
        assert p.implies(q) == (~p | q)

    @given(data=st.data())
    def test_iff_symmetric(self, data):
        space = space_of(a=BoolDomain(), b=BoolDomain())
        p = Predicate(space, data.draw(masks(space)))
        q = Predicate(space, data.draw(masks(space)))
        assert p.iff(q) == q.iff(p)
        assert p.iff(q) == ~(p ^ q)

    def test_subtraction(self, space):
        p = Predicate.from_indices(space, [0, 1, 2])
        q = Predicate.from_indices(space, [1])
        assert sorted((p - q).indices()) == [0, 2]

    def test_double_negation(self, space):
        p = Predicate.from_indices(space, [2, 4])
        assert ~~p == p

    def test_cross_space_rejected(self, space):
        other = space_of(x=BoolDomain())
        with pytest.raises(ValueError):
            Predicate.true(space) & Predicate.true(other)

    def test_non_predicate_rejected(self, space):
        with pytest.raises(TypeError):
            Predicate.true(space) & True


class TestEverywhereOperator:
    def test_pointwise_implication_vs_entails(self, space):
        p = Predicate.from_indices(space, [0, 1])
        q = Predicate.from_indices(space, [0, 1, 2])
        # p ⇒ q is a predicate (true everywhere here), [p ⇒ q] a Boolean.
        assert p.implies(q).is_everywhere()
        assert p.entails(q)
        assert not q.entails(p)

    def test_everywhere_function(self, space):
        assert everywhere(Predicate.true(space))
        assert not everywhere(~Predicate.true(space) | Predicate.false(space))

    def test_equality_is_everywhere_iff(self, space):
        p = Predicate.from_indices(space, [1, 3])
        q = Predicate.from_indices(space, [1, 3])
        assert p == q
        assert p.iff(q).is_everywhere()

    def test_no_implicit_bool(self, space):
        with pytest.raises(TypeError):
            bool(Predicate.true(space))


class TestExtensionQueries:
    def test_count_indices_agree(self, space):
        p = Predicate.from_indices(space, [0, 5, 7])
        assert p.count() == 3
        assert list(p.indices()) == [0, 5, 7]

    def test_example_least_index(self, space):
        p = Predicate.from_indices(space, [4, 6])
        assert p.example().index == 4

    def test_example_of_false_raises(self, space):
        with pytest.raises(ValueError):
            Predicate.false(space).example()

    def test_holds_at_state_and_index(self, space):
        p = Predicate.from_indices(space, [2])
        assert p.holds_at(2)
        assert p.holds_at(space.state_at(2))
        assert not p.holds_at(3)

    def test_holds_at_out_of_range(self, space):
        with pytest.raises(IndexError):
            Predicate.true(space).holds_at(space.size)


class TestBigOperators:
    def test_empty_conjunction_is_true(self, space):
        assert conjunction(space, []) == Predicate.true(space)

    def test_empty_disjunction_is_false(self, space):
        assert disjunction(space, []) == Predicate.false(space)

    @given(data=st.data())
    def test_conjunction_is_intersection(self, data):
        space = space_of(a=BoolDomain(), b=BoolDomain())
        ps = [Predicate(space, data.draw(masks(space))) for _ in range(3)]
        expected = ps[0] & ps[1] & ps[2]
        assert conjunction(space, ps) == expected

    @given(data=st.data())
    def test_disjunction_is_union(self, data):
        space = space_of(a=BoolDomain(), b=BoolDomain())
        ps = [Predicate(space, data.draw(masks(space))) for _ in range(3)]
        expected = ps[0] | ps[1] | ps[2]
        assert disjunction(space, ps) == expected


class TestLatticeLaws:
    @given(data=st.data())
    def test_absorption(self, data):
        space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
        p = Predicate(space, data.draw(masks(space)))
        q = Predicate(space, data.draw(masks(space)))
        assert (p & (p | q)) == p
        assert (p | (p & q)) == p

    @given(data=st.data())
    def test_distribution(self, data):
        space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
        p = Predicate(space, data.draw(masks(space)))
        q = Predicate(space, data.draw(masks(space)))
        r = Predicate(space, data.draw(masks(space)))
        assert (p & (q | r)) == ((p & q) | (p & r))
        assert (p | (q & r)) == ((p | q) & (p | r))

    @given(data=st.data())
    def test_entails_is_partial_order(self, data):
        space = space_of(a=BoolDomain(), b=BoolDomain())
        p = Predicate(space, data.draw(masks(space)))
        q = Predicate(space, data.draw(masks(space)))
        r = Predicate(space, data.draw(masks(space)))
        assert p.entails(p)
        if p.entails(q) and q.entails(p):
            assert p == q
        if p.entails(q) and q.entails(r):
            assert p.entails(r)
