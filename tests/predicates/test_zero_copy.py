"""Differential suite for the zero-copy buffer protocol (DESIGN.md §14).

``words_view`` exports a predicate's packed little-endian word image as a
read-only buffer; ``from_buffer`` reconstructs a predicate over that
buffer *without copying* on the numpy backend.  The arena relies on the
round trip being exact on every backend and on the reconstructed
predicates refusing writes — a worker scribbling on a shared segment
would corrupt every sibling's reads.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates import Predicate, get_backend, using_backend
from repro.statespace import BoolDomain, IntRangeDomain, space_of

BACKENDS = ["int", "numpy"]


@st.composite
def space_and_mask(draw):
    shape = draw(st.integers(min_value=0, max_value=2))
    if shape == 0:
        space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
    elif shape == 1:
        space = space_of(n=IntRangeDomain(0, 9), b=BoolDomain())
    else:
        # Straddles the 64-bit word boundary: two words, 66 states.
        space = space_of(n=IntRangeDomain(0, 32), b=BoolDomain())
    mask = draw(st.integers(min_value=0, max_value=(1 << space.size) - 1))
    return space, mask


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(space_and_mask(), st.sampled_from(BACKENDS))
    def test_from_buffer_inverts_words_view(self, sm, backend_name):
        space, mask = sm
        with using_backend(backend_name):
            p = Predicate(space, mask)
            q = Predicate.from_buffer(space, p.words_view())
            assert q == p
            assert q.mask == mask

    @settings(max_examples=60, deadline=None)
    @given(space_and_mask(), st.sampled_from(BACKENDS), st.sampled_from(BACKENDS))
    def test_round_trip_crosses_backends(self, sm, writer, reader):
        """A view exported under one backend reads back under another."""
        space, mask = sm
        with using_backend(writer):
            view = Predicate(space, mask).words_view()
        with using_backend(reader):
            assert Predicate.from_buffer(space, view).mask == mask

    @settings(max_examples=40, deadline=None)
    @given(space_and_mask())
    def test_view_is_the_packed_little_endian_image(self, sm):
        space, mask = sm
        n_words = (space.size + 63) // 64
        view = Predicate(space, mask).words_view()
        assert view.nbytes == n_words * 8
        assert int.from_bytes(bytes(view), "little") == mask

    def test_robdd_reads_buffers_too(self):
        space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
        view = Predicate(space, 0b10110101).words_view()
        robdd = get_backend("robdd")
        p = Predicate.from_buffer(space, view, backend=robdd)
        assert p.mask == 0b10110101


class TestReadOnly:
    def test_views_are_read_only(self):
        space = space_of(n=IntRangeDomain(0, 32), b=BoolDomain())
        for backend_name in BACKENDS:
            with using_backend(backend_name):
                view = Predicate(space, (1 << 66) - 1).words_view()
            assert view.readonly

    def test_numpy_from_buffer_refuses_writes(self):
        np = pytest.importorskip("numpy")
        space = space_of(n=IntRangeDomain(0, 32), b=BoolDomain())
        numpy_backend = get_backend("numpy")
        view = Predicate(space, 0b1011).words_view()
        handle = numpy_backend.from_buffer(view, space.size)
        assert isinstance(handle, np.ndarray)
        assert not handle.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            handle[0] = 0

    def test_numpy_from_buffer_is_zero_copy(self):
        np = pytest.importorskip("numpy")
        space = space_of(n=IntRangeDomain(0, 32), b=BoolDomain())
        numpy_backend = get_backend("numpy")
        backing = bytearray(16)
        backing[0] = 0b101
        handle = numpy_backend.from_buffer(memoryview(backing), space.size)
        assert int(handle[0]) == 0b101
        # Same memory, not a copy: mutating the backing store shows
        # through the handle (the arena's segment is the one writer).
        backing[0] = 0b111
        assert int(handle[0]) == 0b111
        assert np.shares_memory(
            handle, np.frombuffer(memoryview(backing), dtype="<u8")
        )

    def test_from_buffer_validates_length(self):
        space = space_of(a=BoolDomain(), b=BoolDomain())
        with pytest.raises(ValueError):
            Predicate.from_buffer(space, b"\x00" * 7)


class TestGroupTablesFromArrays:
    def test_numpy_group_table_from_array_is_read_only(self):
        np = pytest.importorskip("numpy")
        numpy_backend = get_backend("numpy")
        group_of = np.array([0, 0, 1, 1], dtype=np.int64)
        table, n_groups = numpy_backend.group_table_from_array(group_of, 2, 4)
        assert n_groups == 2
        assert not table.flags.writeable

    def test_int_backend_has_no_array_group_tables(self):
        with pytest.raises(NotImplementedError):
            get_backend("int").group_table_from_array([0, 1], 2, 2)
