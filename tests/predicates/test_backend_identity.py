"""Predicate identity diagnostics: ``__repr__`` tags and mixing errors.

A predicate bound to a backend handle advertises it in ``repr`` (so a
debugging session can see which representation a chain is running on),
and combining predicates bound to *different* handle-keeping backends
raises :class:`BackendMismatchError` instead of silently round-tripping
one side through an int mask.
"""

import pytest

from repro.predicates import (
    BackendMismatchError,
    Predicate,
    get_backend,
    using_backend,
    wcyl,
)
from repro.statespace import BoolDomain, space_of


def _space():
    return space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())


class TestRepr:
    def test_mask_predicate_has_no_backend_tag(self):
        p = Predicate(_space(), 0b1010)
        assert "backend=" not in repr(p)

    @pytest.mark.parametrize(
        "backend,handle_type",
        [("numpy", "ndarray"), ("robdd", "RobddHandle")],
    )
    def test_bound_predicate_names_backend_and_handle_kind(
        self, backend, handle_type
    ):
        space = _space()
        with using_backend(backend):
            # A kernel result carries the producing backend's handle.
            p = wcyl(("a",), Predicate(space, 0b10101010))
        text = repr(p)
        assert f"backend={backend}" in text
        assert f"handle={handle_type}" in text

    def test_true_false_and_tiny_predicates_still_render(self):
        space = _space()
        with using_backend("robdd"):
            top = wcyl(("a",), Predicate.true(space))
            bot = wcyl(("a",), Predicate.false(space))
        assert repr(top).startswith("Predicate(true")
        assert repr(bot).startswith("Predicate(false")


class TestBackendMismatch:
    def _bound(self, backend_name, mask=0b1100):
        space = _space()
        bk = get_backend(backend_name)
        if backend_name == "robdd":
            return bk.wrap(space, bk.from_mask_in(space, mask))
        return bk.wrap(space, bk.from_mask(mask, space.size))

    @pytest.mark.parametrize("op", ["__and__", "__or__", "__xor__", "__sub__"])
    def test_mixing_bound_backends_raises(self, op):
        p = self._bound("numpy")
        q = self._bound("robdd")
        with pytest.raises(BackendMismatchError) as exc_info:
            getattr(p, op)(q)
        message = str(exc_info.value)
        assert "numpy" in message and "robdd" in message

    def test_mismatch_is_a_type_error(self):
        assert issubclass(BackendMismatchError, TypeError)

    def test_mask_predicates_mix_with_anything(self):
        # Only *two bound handles* conflict; a plain mask predicate adopts
        # the bound side's backend.
        space = _space()
        plain = Predicate(space, 0b1010)
        bound = self._bound("robdd")  # mask 0b1100
        expected = Predicate(space, 0b1000).fingerprint()
        assert (plain & bound).fingerprint() == expected
        assert (bound & plain).fingerprint() == expected

    def test_cached_handle_on_a_mask_predicate_is_not_a_binding(self):
        # A long-lived mask predicate (e.g. in the lru-cached model
        # registry) may cache a handle from an earlier backend scope;
        # meeting a handle from another backend later must re-route, not
        # raise — its mask is materialized, there is no round-trip.
        space = _space()
        p = Predicate(space, 0b1010)
        p.handle(get_backend("numpy"))  # attaches a numpy handle in place
        bound = self._bound("robdd")  # mask 0b1100, handle-only
        expected = Predicate(space, 0b1000).fingerprint()
        assert (p & bound).fingerprint() == expected
        assert (bound & p).fingerprint() == expected

    def test_explicit_conversion_unlocks_mixing(self):
        space = _space()
        bk = get_backend("robdd")
        p = self._bound("numpy")
        q = self._bound("robdd", mask=0b1010)
        converted = bk.wrap(space, p.handle(bk))
        assert (converted & q).fingerprint() == Predicate(space, 0b1000).fingerprint()
