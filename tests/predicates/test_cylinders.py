"""wcyl / scyl — the paper's eq. (6) and properties (7)–(12)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.predicates import (
    Predicate,
    depends_only_on,
    independent_of,
    quantify_exists,
    quantify_forall,
    scyl,
    support,
    var_cmp,
    var_true,
    wcyl,
)
from repro.statespace import BoolDomain, IntRangeDomain, space_of


@pytest.fixture
def space():
    return space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())


def masks(space):
    return st.integers(min_value=0, max_value=space.full_mask)


class TestWcylDefinition:
    def test_semantic_definition(self, space):
        """wcyl.V.p holds at s iff p holds at every state agreeing with s on V."""
        p = Predicate.from_callable(space, lambda s: s["a"] or s["b"])
        cyl = wcyl(["a"], p)
        for s in space.states():
            expected = all(
                p.holds_at(t)
                for t in space.states()
                if t["a"] == s["a"]
            )
            assert cyl.holds_at(s) == expected

    def test_eq7_stronger_than_p(self, space):
        """(7): [wcyl.V.p ⇒ p]."""
        p = Predicate.from_callable(space, lambda s: s["a"] != s["c"])
        for names in (["a"], ["a", "b"], ["b", "c"], []):
            assert wcyl(names, p).entails(p)

    @given(data=st.data())
    def test_eq8_monotone_in_p(self, data):
        """(8): monotone in the predicate argument."""
        space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
        p = Predicate(space, data.draw(masks(space)))
        q = p | Predicate(space, data.draw(masks(space)))
        assert wcyl(["a", "b"], p).entails(wcyl(["a", "b"], q))

    @given(data=st.data())
    def test_eq8_monotone_in_v(self, data):
        """(8): monotone in the variable-set argument (more vars, weaker cylinder)."""
        space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
        p = Predicate(space, data.draw(masks(space)))
        assert wcyl(["a"], p).entails(wcyl(["a", "b"], p))

    def test_eq9_fixpoint_on_local_predicates(self, space):
        """(9): p over V ⇒ p ≡ wcyl.V.p."""
        p = Predicate.from_callable(space, lambda s: s["a"] and not s["b"])
        assert wcyl(["a", "b"], p) == p

    @given(data=st.data())
    def test_eq10_greatest_local_lower_bound(self, data):
        """(10): local q stronger than p is stronger than wcyl.V.p."""
        space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
        p = Predicate(space, data.draw(masks(space)))
        cyl = wcyl(["a", "b"], p)
        # Every local predicate q ⇒ p satisfies q ⇒ wcyl.V.p; check over a
        # sample of local predicates built by projection.
        q = wcyl(["a", "b"], Predicate(space, data.draw(masks(space)))) & cyl
        assert q.entails(p)
        assert q.entails(cyl)

    def test_eq11_universally_conjunctive(self, space):
        """(11): wcyl.V distributes over arbitrary conjunctions."""
        from repro.transformers import check_universally_conjunctive

        assert check_universally_conjunctive(lambda p: wcyl(["a", "b"], p), space) is None

    def test_eq12_not_disjunctive_papers_counterexample(self):
        """(12): the paper's counterexample, two integer variables x and y.

        wcyl.x.(x>0 ∧ y>0) = false and wcyl.x.(x>0 ∧ y≤0) = false while
        wcyl.x.(x>0) = (x>0).
        """
        space = space_of(x=IntRangeDomain(-1, 1), y=IntRangeDomain(-1, 1))
        x_pos = var_cmp(space, "x", ">", 0)
        y_pos = var_cmp(space, "y", ">", 0)
        left = wcyl(["x"], x_pos & y_pos)
        right = wcyl(["x"], x_pos & ~y_pos)
        assert left.is_false()
        assert right.is_false()
        assert wcyl(["x"], x_pos) == x_pos
        # Hence wcyl.x.(p ∨ q) ≠ wcyl.x.p ∨ wcyl.x.q:
        assert wcyl(["x"], (x_pos & y_pos) | (x_pos & ~y_pos)) != (left | right)

    def test_empty_variable_set(self, space):
        p = Predicate.from_indices(space, [0])
        assert wcyl([], p).is_false()
        assert wcyl([], Predicate.true(space)).is_everywhere()


class TestScylDuality:
    @given(data=st.data())
    def test_scyl_is_dual(self, data):
        space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
        p = Predicate(space, data.draw(masks(space)))
        assert scyl(["a", "b"], p) == ~wcyl(["a", "b"], ~p)

    @given(data=st.data())
    def test_galois_connection(self, data):
        """scyl.V ⊣ wcyl.V on local predicates: scyl.V.p ⇒ q  ≡  p ⇒ wcyl... """
        space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
        p = Predicate(space, data.draw(masks(space)))
        q_local = wcyl(["a"], Predicate(space, data.draw(masks(space))))
        assert scyl(["a"], p).entails(q_local) == p.entails(q_local)

    def test_weaker_than_p(self, space):
        p = Predicate.from_callable(space, lambda s: s["b"])
        assert p.entails(scyl(["a"], p))


class TestIndependence:
    def test_depends_only_on(self, space):
        p = Predicate.from_callable(space, lambda s: s["a"] == s["b"])
        assert depends_only_on(p, ["a", "b"])
        assert depends_only_on(p, ["a", "b", "c"])
        assert not depends_only_on(p, ["a"])

    def test_constants_depend_on_nothing(self, space):
        assert depends_only_on(Predicate.true(space), [])
        assert depends_only_on(Predicate.false(space), [])

    def test_independent_of(self, space):
        p = var_true(space, "a")
        assert independent_of(p, "b")
        assert independent_of(p, "c")
        assert not independent_of(p, "a")

    def test_support_minimal(self, space):
        p = Predicate.from_callable(space, lambda s: s["a"] or s["c"])
        assert support(p) == frozenset({"a", "c"})
        assert support(Predicate.true(space)) == frozenset()

    def test_support_of_xor(self, space):
        p = Predicate.from_callable(space, lambda s: s["a"] != s["b"])
        assert support(p) == frozenset({"a", "b"})


class TestQuantifiers:
    def test_forall_complements_wcyl(self, space):
        p = Predicate.from_callable(space, lambda s: s["a"] or s["b"])
        assert quantify_forall(["c"], p) == wcyl(["a", "b"], p)

    def test_exists_complements_scyl(self, space):
        p = Predicate.from_callable(space, lambda s: s["a"] and s["c"])
        assert quantify_exists(["c"], p) == scyl(["a", "b"], p)

    def test_quantify_all_vars(self, space):
        p = Predicate.from_indices(space, [3])
        assert quantify_exists(space.names, p).is_everywhere()
        assert quantify_forall(space.names, p).is_false()
