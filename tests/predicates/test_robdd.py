"""Differential tests: the ROBDD backend must agree bit-for-bit with int.

The int-bitmask backend is the exact reference; the ROBDD backend is the
symbolic escape hatch past the explicit-state limit.  Where both can run
— every space below the limit — the results must be *identical*: same
fingerprints on every kernel, same transformer chains, same headline
verdicts, byte-identical certificate artifacts.  Past the limit the
symbolic backend is additionally exercised on operations explicit
backends cannot even represent.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates import (
    Predicate,
    get_backend,
    scyl,
    using_backend,
    wcyl,
)
from repro.predicates import limits
from repro.statespace import BoolDomain, IntRangeDomain, space_of
from repro.transformers import sp_statement, sst, wp_statement

from ..conftest import program_with_predicates

PAIR = ("int", "robdd")


def _space():
    # 48 states: byte-unaligned, multi-radix — non-power-of-two digit groups.
    return space_of(
        a=BoolDomain(), n=IntRangeDomain(0, 5), b=BoolDomain(), c=BoolDomain()
    )


def _random_masks(space, count, seed):
    rng = random.Random(seed)
    full = (1 << space.size) - 1
    edge = [0, 1, full, full - 1, 1 << (space.size - 1)]
    return edge + [rng.randrange(full + 1) for _ in range(count)]


class TestRobddKernelsAgreeWithInt:
    @pytest.mark.parametrize("seed", range(3))
    def test_algebra_agrees(self, seed):
        space = _space()
        size = space.size
        bk_int, bk_bdd = get_backend("int"), get_backend("robdd")
        masks = _random_masks(space, 6, seed)
        for m1 in masks[:6]:
            for m2 in masks[:6]:
                h1i, h2i = bk_int.from_mask(m1, size), bk_int.from_mask(m2, size)
                h1b = bk_bdd.from_mask_in(space, m1)
                h2b = bk_bdd.from_mask_in(space, m2)
                for op in ("and_", "or_", "xor", "diff"):
                    ri = getattr(bk_int, op)(h1i, h2i, size)
                    rb = getattr(bk_bdd, op)(h1b, h2b, size)
                    assert bk_int.fingerprint(ri, size) == bk_bdd.fingerprint(
                        rb, size
                    ), op
                assert bk_int.fingerprint(
                    bk_int.not_(h1i, size), size
                ) == bk_bdd.fingerprint(bk_bdd.not_(h1b, size), size)

    @pytest.mark.parametrize("seed", range(3))
    def test_counting_and_tests_agree(self, seed):
        space = _space()
        size = space.size
        bk_bdd = get_backend("robdd")
        for mask in _random_masks(space, 10, seed):
            hb = bk_bdd.from_mask_in(space, mask)
            assert bk_bdd.popcount(hb, size) == bin(mask).count("1")
            assert bk_bdd.is_false(hb, size) == (mask == 0)
            assert bk_bdd.is_full(hb, size) == (mask == (1 << size) - 1)
            for i in (0, 1, size // 2, size - 1):
                assert bk_bdd.test_bit(hb, i) == bool(mask >> i & 1)
            assert bk_bdd.to_mask(hb, size) == mask

    def test_fingerprint_is_exact_mask_bytes_below_the_limit(self):
        space = _space()
        size = space.size
        bk_bdd = get_backend("robdd")
        for mask in _random_masks(space, 8, seed=5):
            fp = bk_bdd.fingerprint(bk_bdd.from_mask_in(space, mask), size)
            assert fp == Predicate(space, mask).fingerprint()
            assert fp == mask.to_bytes((size + 7) // 8, "little")

    def test_from_mask_without_a_space_is_rejected(self):
        # The encoding is derived from the space's variable structure; a
        # bare (mask, size) pair cannot name one.
        with pytest.raises(TypeError, match="from_mask_in"):
            get_backend("robdd").from_mask(0b1010, 4)

    def test_serialization_is_canonical_and_round_trips(self):
        space = _space()
        bk = get_backend("robdd")
        for mask in _random_masks(space, 6, seed=9):
            h = bk.from_mask_in(space, mask)
            payload = bk.serialize(h)
            # Rebuilding from a mask reached by a different route must
            # serialize identically (dense postorder renumbering).
            again = bk.serialize(
                bk.not_(bk.not_(bk.from_mask_in(space, mask), space.size), space.size)
            )
            assert payload == again
            assert bk.to_mask(bk.deserialize(space, payload), space.size) == mask


class TestRobddTransformersAgreeWithInt:
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_sp_wp_agree(self, data):
        program, p = data.draw(program_with_predicates(1))
        results = {}
        for name in PAIR:
            with using_backend(name):
                program.transformer_cache.clear()
                fresh = Predicate(program.space, p.mask)
                results[name] = [
                    (
                        sp_statement(program, stmt, fresh).fingerprint(),
                        wp_statement(program, stmt, fresh).fingerprint(),
                    )
                    for stmt in program.statements
                ]
        assert results["int"] == results["robdd"]

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_sst_chain_agrees(self, data):
        program, p = data.draw(program_with_predicates(1))
        results = {}
        for name in PAIR:
            with using_backend(name):
                program.transformer_cache.clear()
                result = sst(program, Predicate(program.space, p.mask))
                results[name] = (
                    result.predicate.fingerprint(),
                    result.iterations,
                    tuple(q.fingerprint() for q in result.chain),
                )
        assert results["int"] == results["robdd"]

    @pytest.mark.parametrize("seed", range(3))
    def test_cylinders_agree(self, seed):
        space = _space()
        groups = [("a",), ("n",), ("a", "b"), ("n", "c"), ("a", "n", "b", "c")]
        for mask in _random_masks(space, 5, seed):
            for names in groups:
                results = {}
                for name in PAIR:
                    with using_backend(name):
                        fresh = Predicate(space, mask)
                        results[name] = (
                            wcyl(names, fresh).fingerprint(),
                            scyl(names, fresh).fingerprint(),
                        )
                assert results["int"] == results["robdd"]


class TestHeadlineVerdictsOnRobdd:
    def test_fig1_no_solution_bit_identical(self):
        from repro.core import solve_si, solve_si_iterative
        from repro.figures import fig1_program

        with using_backend("robdd"):
            report = solve_si(fig1_program())
            assert not report.well_posed
            assert report.solutions == ()
            iterative = solve_si_iterative(fig1_program())
            assert not iterative.converged
            assert len(iterative.cycle) == 2

    def test_fig2_sis_bit_identical(self):
        from repro.core import solve_si
        from repro.figures import fig2_program, fig2_strong_init, fig2_weak_init

        fingerprints = {}
        for name in PAIR:
            with using_backend(name):
                program = fig2_program()
                fingerprints[name] = tuple(
                    solve_si(program.with_init(init(program)))
                    .strongest()
                    .fingerprint()
                    for init in (fig2_weak_init, fig2_strong_init)
                )
        assert fingerprints["int"] == fingerprints["robdd"]

    def test_certificate_artifacts_byte_identical(self, tmp_path):
        from repro.certificates.emit import emit_all

        with using_backend("int"):
            int_paths = emit_all(tmp_path / "int", only=["fig1", "fig2"])
        with using_backend("robdd"):
            bdd_paths = emit_all(tmp_path / "robdd", only=["fig1", "fig2"])
        assert [p.name for p in int_paths] == [p.name for p in bdd_paths]
        for a, b in zip(int_paths, bdd_paths):
            assert a.read_bytes() == b.read_bytes()


class TestSymbolicScaleBasics:
    """Operations past the explicit limit, where only the ROBDD backend runs."""

    def _big_space(self):
        # 2^30 states: 30 boolean variables, far past the 2^22 default limit.
        return space_of(**{f"v{i}": BoolDomain() for i in range(30)})

    def test_true_false_and_counting(self):
        space = self._big_space()
        assert space.size > limits.get_limit("explicit")
        top = Predicate.true(space)
        bot = Predicate.false(space)
        assert top.count() == space.size
        assert bot.is_false() and not top.is_false()
        assert (top - top) == bot
        assert (top ^ top).is_false()

    def test_single_state_and_some_index(self):
        space = self._big_space()
        bk = get_backend("robdd")
        index = 123_456_789
        single = bk.wrap(space, bk.single(space, index))
        assert single.count() == 1
        assert bk.some_index(single.handle(bk), space.size) == index
        assert single.holds_at(index)
        assert not single.holds_at(index + 1)

    def test_structural_fingerprint_is_stable_and_tagged(self):
        space = self._big_space()
        top = Predicate.true(space)
        fp = top.fingerprint()
        assert fp.startswith(b"robdd\x00")
        assert fp == Predicate.true(space).fingerprint()
        assert fp != Predicate.false(space).fingerprint()
