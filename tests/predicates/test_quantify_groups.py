"""Edge cases of the eq.-(6) cylinder quantifiers, across all backends.

``wcyl``/``scyl`` route through each backend's ``quantify_groups`` kernel
(grouped reductions for the explicit backends, BDD quantification of the
non-observable variable groups for the symbolic one).  The degenerate
observation sets — no variables, every variable, one variable — are where
off-by-one partition bugs live, so each is pinned semantically and then
cross-checked differentially on random predicates.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates import (
    Predicate,
    depends_only_on,
    scyl,
    using_backend,
    wcyl,
)
from repro.statespace import BoolDomain, IntRangeDomain, space_of

BACKENDS = ("int", "numpy", "robdd")


def _space():
    return space_of(a=BoolDomain(), n=IntRangeDomain(0, 2), b=BoolDomain())


def _predicates(space, count=8, seed=3):
    rng = random.Random(seed)
    full = (1 << space.size) - 1
    masks = [0, 1, full] + [rng.randrange(full + 1) for _ in range(count)]
    return [Predicate(space, m) for m in masks]


@pytest.mark.parametrize("backend", BACKENDS)
class TestDegenerateGroups:
    def test_empty_observation_set_is_global_quantification(self, backend):
        # wcyl.∅.p = (∀ everything :: p): true exactly when p is everywhere;
        # scyl.∅.p = (∃ everything :: p): true exactly when p is somewhere.
        space = _space()
        with using_backend(backend):
            for p in _predicates(space):
                weak, strong = wcyl((), p), scyl((), p)
                if p.is_everywhere():
                    assert weak.is_everywhere()
                else:
                    assert weak.is_false()
                if p.is_false():
                    assert strong.is_false()
                else:
                    assert strong.is_everywhere()

    def test_full_observation_set_is_identity(self, backend):
        # Observing every variable leaves nothing to quantify: eq. (9)'s
        # fixed-point case, wcyl.V.p = scyl.V.p = p.
        space = _space()
        names = tuple(space.names)
        with using_backend(backend):
            for p in _predicates(space):
                assert wcyl(names, p) == p
                assert scyl(names, p) == p
                assert depends_only_on(p, names)

    def test_singleton_groups_match_bruteforce(self, backend):
        space = _space()
        with using_backend(backend):
            for name in space.names:
                for p in _predicates(space, count=4, seed=11):
                    weak, strong = wcyl((name,), p), scyl((name,), p)
                    for i in range(space.size):
                        group = [
                            j
                            for j in range(space.size)
                            if space.value_at(j, name) == space.value_at(i, name)
                        ]
                        assert weak.holds_at(i) == all(p.holds_at(j) for j in group)
                        assert strong.holds_at(i) == any(
                            p.holds_at(j) for j in group
                        )

    def test_duality_and_idempotence(self, backend):
        # (7)/(8)-style algebra: scyl.V.p = ¬wcyl.V.¬p, and both are
        # idempotent projections onto the V-cylinder sublattice.
        space = _space()
        groups = [(), ("a",), ("n",), ("a", "b"), tuple(space.names)]
        with using_backend(backend):
            for p in _predicates(space, count=5, seed=17):
                for names in groups:
                    weak, strong = wcyl(names, p), scyl(names, p)
                    assert strong == ~wcyl(names, ~p)
                    assert wcyl(names, weak) == weak
                    assert scyl(names, strong) == strong
                    assert weak.entails(p) and p.entails(strong)


class TestDifferentialAgainstInt:
    @given(
        mask=st.integers(min_value=0, max_value=(1 << 12) - 1),
        group=st.sets(st.sampled_from(["a", "n", "b"])),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_backends_agree_on_random_inputs(self, mask, group):
        space = _space()
        names = tuple(sorted(group))
        results = {}
        for backend in BACKENDS:
            with using_backend(backend):
                p = Predicate(space, mask)
                results[backend] = (
                    wcyl(names, p).fingerprint(),
                    scyl(names, p).fingerprint(),
                    depends_only_on(p, names),
                )
        assert results["numpy"] == results["int"]
        assert results["robdd"] == results["int"]
