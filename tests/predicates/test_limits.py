"""Unit tests for the unified state-limit module (repro.predicates.limits).

One configurable home replaces the two unrelated ``MAX_EXHAUSTIVE_STATES``
constants that used to live in ``repro.core.kbp`` (28) and
``repro.transformers.junctivity`` (16).  Each guard must keep its old
default, stay overridable by environment variable and ``set_limit``, and
refuse with a message that names its escape hatches.
"""

import pytest

from repro.predicates import limits
from repro.predicates.limits import (
    DEFAULT_LIMITS,
    ExplicitStateLimitError,
    check_enumeration_size,
    check_explicit_size,
    check_solver_size,
    get_limit,
    set_limit,
)


@pytest.fixture
def restore_limits():
    yield
    for name in DEFAULT_LIMITS:
        set_limit(name, None)


class TestDefaults:
    def test_backend_aware_defaults_match_the_old_constants(self):
        assert get_limit("solver") == 28  # old repro.core.kbp value
        assert get_limit("enumeration") == 16  # old junctivity value
        assert get_limit("explicit") == 1 << 22

    def test_compat_aliases_still_exported(self):
        from repro.core.kbp import MAX_EXHAUSTIVE_STATES as kbp_limit
        from repro.transformers.junctivity import (
            MAX_EXHAUSTIVE_STATES as junctivity_limit,
        )

        assert kbp_limit == 28
        assert junctivity_limit == 16

    def test_unknown_limit_name_rejected(self):
        with pytest.raises(KeyError, match="unknown limit"):
            get_limit("quantum")
        with pytest.raises(KeyError, match="unknown limit"):
            set_limit("quantum", 4)


class TestOverrides:
    def test_set_limit_overrides_and_restores(self, restore_limits):
        previous = set_limit("solver", 4)
        assert get_limit("solver") == 4
        with pytest.raises(ExplicitStateLimitError):
            check_solver_size(5)
        check_solver_size(4)  # at the limit is allowed
        set_limit("solver", previous)

    def test_env_var_is_read_on_first_use(self, restore_limits, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_SOLVER_STATES", "7")
        set_limit("solver", None)  # force a re-read
        assert get_limit("solver") == 7

    def test_garbage_env_var_raises(self, restore_limits, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_SOLVER_STATES", "lots")
        set_limit("solver", None)
        with pytest.raises(ValueError, match="REPRO_MAX_SOLVER_STATES"):
            get_limit("solver")

    def test_nonpositive_limit_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            set_limit("solver", 0)


class TestGuardMessages:
    """Every refusal must name its escape hatches (ISSUE satellite)."""

    def test_explicit_guard_names_the_symbolic_backend(self, restore_limits):
        set_limit("explicit", 8)
        with pytest.raises(ExplicitStateLimitError) as exc_info:
            check_explicit_size(9, "materializing the frobnicator")
        message = str(exc_info.value)
        assert "materializing the frobnicator" in message
        assert "robdd" in message
        assert "REPRO_MAX_EXPLICIT_STATES" in message

    def test_solver_guard_names_cubes_iterative_and_parallel(
        self, restore_limits
    ):
        set_limit("solver", 8)
        with pytest.raises(ExplicitStateLimitError) as exc_info:
            check_solver_size(9, symbolic_ok=True)
        message = str(exc_info.value)
        assert "method='cubes'" in message
        assert "solve_si_iterative" in message
        assert "repro.core.parallel" in message
        assert "REPRO_MAX_SOLVER_STATES" in message

    def test_enumeration_guard_names_the_sampled_alternative(
        self, restore_limits
    ):
        set_limit("enumeration", 8)
        with pytest.raises(ExplicitStateLimitError) as exc_info:
            check_enumeration_size(9)
        message = str(exc_info.value)
        assert "samples" in message
        assert "REPRO_MAX_ENUMERATION_STATES" in message

    def test_limit_error_is_a_value_error(self):
        # Pre-refactor guards raised bare ValueError; callers catching that
        # must keep working.
        assert issubclass(ExplicitStateLimitError, ValueError)


class TestGuardsAreLive:
    """Module constants are aliases; the guards consult the live setting."""

    def test_raising_the_solver_limit_unlocks_a_sweep(self, restore_limits):
        from repro.core.kbp import _check_exhaustive_size
        from repro.statespace import BoolDomain, space_of

        space = space_of(**{f"v{i}": BoolDomain() for i in range(5)})
        set_limit("solver", 8)
        with pytest.raises(ExplicitStateLimitError):
            _check_exhaustive_size(space)
        set_limit("solver", 64)
        _check_exhaustive_size(space)  # no raise
