"""Bitmask ↔ numpy bridge: exact round-trips."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.predicates.npbits import array_to_mask, mask_to_array


class TestRoundTrip:
    @given(st.integers(min_value=1, max_value=200), st.data())
    def test_mask_array_mask(self, size, data):
        mask = data.draw(st.integers(min_value=0, max_value=(1 << size) - 1))
        array = mask_to_array(mask, size)
        assert array.dtype == bool
        assert len(array) == size
        assert array_to_mask(array) == mask

    def test_bit_positions(self):
        array = mask_to_array(0b1011, 6)
        assert array.tolist() == [True, True, False, True, False, False]

    def test_non_byte_aligned_sizes(self):
        for size in (1, 7, 8, 9, 63, 64, 65):
            full = (1 << size) - 1
            assert array_to_mask(mask_to_array(full, size)) == full
            assert array_to_mask(mask_to_array(0, size)) == 0

    def test_array_to_mask_accepts_int_arrays(self):
        assert array_to_mask(np.array([1, 0, 1, 1])) == 0b1101

    def test_empty_mask(self):
        array = mask_to_array(0, 5)
        assert not array.any()
