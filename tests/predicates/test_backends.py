"""Differential tests: the numpy backend must agree kernel-for-kernel with int.

The int-bitmask backend is the exact reference implementation; the packed
numpy-word backend is the fast path.  Every kernel the transformers use —
boolean algebra, popcount, image/preimage, the cylinder quantifiers, and
whole fixpoint chains — is exercised on seeded random inputs under both
backends and the results compared bit-for-bit (via the canonical
fingerprint, which is required to be representation-independent).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates import (
    Predicate,
    default_iteration_limit,
    depends_only_on,
    get_backend,
    iterate_to_fixpoint,
    scyl,
    set_default_backend,
    using_backend,
    wcyl,
)
from repro.statespace import BoolDomain, IntRangeDomain, space_of
from repro.transformers import sp_program, sp_statement, wp_statement

from ..conftest import make_counter_program, program_with_predicates

BACKENDS = ("int", "numpy")


def _space():
    # 48 states: byte-unaligned, multi-radix — exercises the tail-word mask.
    return space_of(a=BoolDomain(), n=IntRangeDomain(0, 5), b=BoolDomain(), c=BoolDomain())


def _random_masks(space, count, seed):
    rng = random.Random(seed)
    full = (1 << space.size) - 1
    edge = [0, 1, full, full - 1, 1 << (space.size - 1)]
    return edge + [rng.randrange(full + 1) for _ in range(count)]


# ----------------------------------------------------------------------
# raw kernels, backend vs backend
# ----------------------------------------------------------------------


class TestBooleanKernels:
    @pytest.mark.parametrize("seed", range(3))
    def test_algebra_agrees(self, seed):
        space = _space()
        size = space.size
        bk_int, bk_np = get_backend("int"), get_backend("numpy")
        masks = _random_masks(space, 8, seed)
        for m1 in masks[:6]:
            for m2 in masks[:6]:
                h1i, h2i = bk_int.from_mask(m1, size), bk_int.from_mask(m2, size)
                h1n, h2n = bk_np.from_mask(m1, size), bk_np.from_mask(m2, size)
                for op in ("and_", "or_", "xor", "diff"):
                    ri = getattr(bk_int, op)(h1i, h2i, size)
                    rn = getattr(bk_np, op)(h1n, h2n, size)
                    assert bk_int.fingerprint(ri, size) == bk_np.fingerprint(rn, size), op
                assert bk_int.fingerprint(bk_int.not_(h1i, size), size) == bk_np.fingerprint(
                    bk_np.not_(h1n, size), size
                )

    @pytest.mark.parametrize("seed", range(3))
    def test_counting_and_tests_agree(self, seed):
        space = _space()
        size = space.size
        bk_int, bk_np = get_backend("int"), get_backend("numpy")
        for mask in _random_masks(space, 10, seed):
            hi, hn = bk_int.from_mask(mask, size), bk_np.from_mask(mask, size)
            assert bk_int.popcount(hi, size) == bk_np.popcount(hn, size)
            assert bk_int.is_false(hi, size) == bk_np.is_false(hn, size)
            assert bk_int.is_full(hi, size) == bk_np.is_full(hn, size)
            for i in (0, 1, size // 2, size - 1):
                assert bk_int.test_bit(hi, i) == bk_np.test_bit(hn, i)
            assert bk_np.to_mask(hn, size) == mask

    def test_fingerprints_are_canonical_across_backends(self):
        space = _space()
        size = space.size
        for mask in _random_masks(space, 12, seed=7):
            p_int = Predicate(space, mask)
            assert (
                get_backend("int").fingerprint(get_backend("int").from_mask(mask, size), size)
                == get_backend("numpy").fingerprint(
                    get_backend("numpy").from_mask(mask, size), size
                )
                == p_int.fingerprint()
            )
            assert len(p_int.fingerprint()) == (size + 7) // 8


class TestTransformerKernels:
    @given(data=st.data())
    @settings(max_examples=25)
    def test_sp_wp_agree(self, data):
        program, p = data.draw(program_with_predicates(1))
        results = {}
        for name in BACKENDS:
            with using_backend(name):
                program.transformer_cache.clear()
                fresh = Predicate(program.space, p.mask)
                results[name] = [
                    (
                        sp_statement(program, stmt, fresh).fingerprint(),
                        wp_statement(program, stmt, fresh).fingerprint(),
                    )
                    for stmt in program.statements
                ] + [sp_program(program, fresh).fingerprint()]
        assert results["int"] == results["numpy"]

    @pytest.mark.parametrize("seed", range(4))
    def test_cylinders_agree(self, seed):
        space = _space()
        groups = [("a",), ("n",), ("a", "b"), ("n", "c"), ("a", "n", "b", "c")]
        for mask in _random_masks(space, 6, seed):
            for names in groups:
                results = {}
                for name in BACKENDS:
                    with using_backend(name):
                        fresh = Predicate(space, mask)
                        results[name] = (
                            wcyl(names, fresh).fingerprint(),
                            scyl(names, fresh).fingerprint(),
                            depends_only_on(fresh, names),
                        )
                assert results["int"] == results["numpy"]

    def test_cylinder_semantics_vs_bruteforce(self):
        """Both backends against the definitional per-state check (eq. 6)."""
        space = space_of(a=BoolDomain(), n=IntRangeDomain(0, 2))
        rng = random.Random(11)
        names = ("a",)
        outside = [v for v in space.names if v not in names]
        for _ in range(10):
            mask = rng.randrange(1 << space.size)
            for name in BACKENDS:
                with using_backend(name):
                    p = Predicate(space, mask)
                    weak, strong = wcyl(names, p), scyl(names, p)
                for i in range(space.size):
                    agreeing = [
                        j
                        for j in range(space.size)
                        if all(
                            space.value_at(j, v) == space.value_at(i, v) for v in names
                        )
                    ]
                    assert weak.holds_at(i) == all(mask >> j & 1 for j in agreeing)
                    assert strong.holds_at(i) == any(mask >> j & 1 for j in agreeing)
            assert outside  # the quantification is over a real complement


class TestFixpointsAcrossBackends:
    @given(data=st.data())
    @settings(max_examples=15)
    def test_sst_chain_agrees(self, data):
        from repro.transformers import sst

        program, p = data.draw(program_with_predicates(1))
        results = {}
        for name in BACKENDS:
            with using_backend(name):
                program.transformer_cache.clear()
                result = sst(program, Predicate(program.space, p.mask))
                results[name] = (result.predicate.fingerprint(), result.iterations)
        assert results["int"] == results["numpy"]

    def test_iterate_detects_cycles_under_both_backends(self):
        space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
        p0 = Predicate(space, 0b10101010)
        p1 = Predicate(space, 0b01010101)

        def flip(x):
            return p1 if x == p0 else p0

        for name in BACKENDS:
            with using_backend(name):
                result = iterate_to_fixpoint(flip, Predicate(space, p0.mask))
                assert not result.converged
                assert len(result.cycle) == 2


# ----------------------------------------------------------------------
# end-to-end: the paper's verdicts must not depend on the backend
# ----------------------------------------------------------------------


class TestPaperVerdictsBackendIndependent:
    def test_fig1_no_solution_under_both_backends(self):
        from repro.core import solve_si, solve_si_iterative
        from repro.figures import fig1_program

        for name in BACKENDS:
            with using_backend(name):
                report = solve_si(fig1_program())
                assert not report.well_posed
                assert report.solutions == ()
                iterative = solve_si_iterative(fig1_program())
                assert not iterative.converged
                assert len(iterative.cycle) == 2

    def test_fig2_sis_bit_identical_across_backends(self):
        from repro.core import solve_si
        from repro.figures import fig2_program, fig2_strong_init, fig2_weak_init

        fingerprints = {}
        for name in BACKENDS:
            with using_backend(name):
                program = fig2_program()
                fingerprints[name] = tuple(
                    solve_si(program.with_init(init(program))).strongest().fingerprint()
                    for init in (fig2_weak_init, fig2_strong_init)
                )
        assert fingerprints["int"] == fingerprints["numpy"]
        weak_si, strong_si = fingerprints["int"]
        # the paper's non-monotonicity exhibit: stronger init, incomparable SI
        assert weak_si != strong_si


# ----------------------------------------------------------------------
# selection API
# ----------------------------------------------------------------------


class TestBackendSelection:
    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREDICATE_BACKEND", "numpy")
        previous = set_default_backend(None)  # force a re-read of the env
        try:
            from repro.predicates.backends import backend_for_size

            assert backend_for_size(4).name == "numpy"
        finally:
            set_default_backend(previous)

    def test_bad_env_var_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREDICATE_BACKEND", "fpga")
        previous = set_default_backend(None)
        try:
            from repro.predicates.backends import backend_for_size

            with pytest.raises(ValueError, match="fpga"):
                backend_for_size(4)
        finally:
            set_default_backend(previous)

    def test_auto_threshold_policy(self):
        from repro.predicates.backends import AUTO_THRESHOLD, backend_for_size

        with using_backend("auto"):
            assert backend_for_size(AUTO_THRESHOLD - 1).name == "int"
            assert backend_for_size(AUTO_THRESHOLD).name == "numpy"

    def test_bound_predicate_keeps_its_backend(self):
        from repro.predicates.backends import backend_for

        space = _space()
        with using_backend("numpy"):
            p = Predicate(space, 0b1011)
            q = wcyl(("a",), p)  # kernel result carries a numpy handle
        with using_backend("int"):
            assert backend_for(q).name == "numpy"
            assert backend_for(Predicate(space, 5)).name == "int"

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            set_default_backend("gpu")


# ----------------------------------------------------------------------
# satellite: the size-proportional iteration limit diagnostic
# ----------------------------------------------------------------------


class TestIterationLimitDiagnostic:
    def test_default_limit_is_size_proportional(self):
        assert default_iteration_limit(8) == 4 * 8 + 16
        assert default_iteration_limit(4096) < 2**4096  # the old default

    def test_runaway_chain_raises_naming_the_transformer(self):
        # 256 distinct values over an 8-state space: the chain neither
        # converges nor cycles within 4*8+16 = 48 steps.
        space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())

        def successor(x):
            return Predicate(space, (x.mask + 1) % (1 << space.size))

        with pytest.raises(RuntimeError, match="my-transformer.*48 steps"):
            iterate_to_fixpoint(
                successor, Predicate.false(space), name="my-transformer"
            )
        # an explicit budget still overrides the default
        result = iterate_to_fixpoint(
            successor, Predicate(space, 254), max_iterations=500
        )
        assert not result.converged  # wraps around into a 256-cycle
