"""Predicate builders over named variables."""

import pytest

from repro.predicates import Predicate, pred, var_cmp, var_eq, var_in, var_true, vars_cmp
from repro.statespace import BOT, BoolDomain, EnumDomain, IntRangeDomain, OptionDomain, space_of


@pytest.fixture
def space():
    return space_of(
        n=IntRangeDomain(0, 3),
        color=EnumDomain("c", ["red", "green"]),
        flag=BoolDomain(),
    )


class TestVarEq:
    def test_matches_from_callable(self, space):
        """The arithmetic fast path agrees with per-state evaluation."""
        for name in space.names:
            for value in space.var(name).domain.values:
                fast = var_eq(space, name, value)
                slow = Predicate.from_callable(space, lambda s: s[name] == value)
                assert fast == slow

    def test_absent_value_rejected(self, space):
        with pytest.raises(ValueError):
            var_eq(space, "n", 17)

    def test_option_domain_bot(self):
        space = space_of(z=OptionDomain(IntRangeDomain(0, 2)))
        p = var_eq(space, "z", BOT)
        assert p.count() == 1
        assert p.holds_at(space.index_of({"z": BOT}))


class TestVarComparisons:
    def test_var_cmp_all_operators(self, space):
        checks = {
            "==": lambda v: v == 2,
            "!=": lambda v: v != 2,
            "<": lambda v: v < 2,
            "<=": lambda v: v <= 2,
            ">": lambda v: v > 2,
            ">=": lambda v: v >= 2,
        }
        for op, fn in checks.items():
            p = var_cmp(space, "n", op, 2)
            expected = Predicate.from_callable(space, lambda s: fn(s["n"]))
            assert p == expected, op

    def test_unknown_operator(self, space):
        with pytest.raises(ValueError):
            var_cmp(space, "n", "<>", 1)

    def test_var_in(self, space):
        p = var_in(space, "n", [0, 3])
        assert sorted({s["n"] for s in p.states()}) == [0, 3]

    def test_var_true(self, space):
        assert var_true(space, "flag") == var_eq(space, "flag", True)

    def test_vars_cmp(self):
        space = space_of(x=IntRangeDomain(0, 2), y=IntRangeDomain(0, 2))
        p = vars_cmp(space, "x", "<", "y")
        for s in space.states():
            assert p.holds_at(s) == (s["x"] < s["y"])

    def test_vars_cmp_unknown_operator(self):
        space = space_of(x=IntRangeDomain(0, 1), y=IntRangeDomain(0, 1))
        with pytest.raises(ValueError):
            vars_cmp(space, "x", "~", "y")


class TestPred:
    def test_pred_is_from_callable(self, space):
        p = pred(space, lambda s: s["color"] == "red" and s["flag"])
        q = Predicate.from_callable(space, lambda s: s["color"] == "red" and s["flag"])
        assert p == q
