"""Fixpoint machinery: Kleene iteration, convergence, cycle detection."""

import pytest

from repro.predicates import (
    FixpointResult,
    Predicate,
    gfp,
    iterate_to_fixpoint,
    lfp,
)
from repro.statespace import BoolDomain, space_of


@pytest.fixture
def space():
    return space_of(a=BoolDomain(), b=BoolDomain())


class TestMonotoneIteration:
    def test_lfp_of_closure(self, space):
        """Least fixpoint of x ↦ x ∨ seed, from false, is seed."""
        seed = Predicate.from_indices(space, [1])
        result = lfp(lambda x: x | seed, Predicate.false(space))
        assert result.converged
        assert result.value == seed

    def test_lfp_grows_one_state_per_step(self, space):
        """x ↦ x ∨ next(x): converges in at most |space| steps."""
        def f(x: Predicate) -> Predicate:
            shifted = Predicate(
                x.space, (x.mask << 1) & x.space.full_mask
            )
            return x | shifted | Predicate.from_indices(x.space, [0])

        result = lfp(f, Predicate.false(space))
        assert result.converged
        assert result.value == Predicate.true(space)
        assert result.iterations <= space.size + 1

    def test_gfp_of_identity(self, space):
        result = gfp(lambda x: x, Predicate.true(space))
        assert result.converged
        assert result.value == Predicate.true(space)

    def test_gfp_of_meet(self, space):
        cap = Predicate.from_indices(space, [0, 2])
        result = gfp(lambda x: x & cap, Predicate.true(space))
        assert result.converged
        assert result.value == cap


class TestNonMonotoneIteration:
    def test_negation_cycles(self, space):
        """x ↦ ¬x has no fixpoint; the iteration reports a 2-cycle."""
        result = iterate_to_fixpoint(lambda x: ~x, Predicate.false(space))
        assert not result.converged
        assert result.value is None
        assert len(result.cycle) == 2

    def test_require_raises_on_cycle(self, space):
        result = iterate_to_fixpoint(lambda x: ~x, Predicate.false(space))
        with pytest.raises(ValueError):
            result.require()

    def test_require_returns_value(self, space):
        result = lfp(lambda x: x, Predicate.false(space))
        assert result.require() == Predicate.false(space)

    def test_max_iterations_cap(self, space):
        """A rotating (aperiodic-looking) function still terminates via history."""
        def rotate(x: Predicate) -> Predicate:
            mask = x.mask
            rotated = ((mask << 1) | (mask >> (space.size - 1))) & space.full_mask
            return Predicate(space, rotated if rotated else 1)

        result = iterate_to_fixpoint(rotate, Predicate.from_indices(space, [0]))
        assert not result.converged or result.value is not None

    def test_iteration_counts_reported(self, space):
        seed = Predicate.from_indices(space, [0, 1, 2])
        result = lfp(lambda x: x | seed, Predicate.false(space))
        assert result.iterations == 1


class TestFixpointResult:
    def test_is_frozen(self, space):
        result = FixpointResult(converged=True, value=Predicate.true(space), iterations=0)
        with pytest.raises(Exception):
            result.converged = False
