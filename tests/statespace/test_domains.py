"""Domain types: ordering, indexing, membership, and error behaviour."""

import pytest

from repro.statespace import (
    BOT,
    BoolDomain,
    Bottom,
    Domain,
    EnumDomain,
    IntRangeDomain,
    OptionDomain,
    SeqDomain,
    TupleDomain,
    bool_domain,
)


class TestBoolDomain:
    def test_order_false_first(self):
        assert BoolDomain().values == (False, True)

    def test_index(self):
        domain = BoolDomain()
        assert domain.index(False) == 0
        assert domain.index(True) == 1

    def test_shared_instance(self):
        assert bool_domain() is bool_domain()


class TestIntRangeDomain:
    def test_inclusive_bounds(self):
        domain = IntRangeDomain(2, 5)
        assert domain.values == (2, 3, 4, 5)
        assert len(domain) == 4

    def test_singleton_range(self):
        assert IntRangeDomain(7, 7).values == (7,)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            IntRangeDomain(3, 2)

    def test_membership(self):
        domain = IntRangeDomain(0, 3)
        assert 0 in domain
        assert 3 in domain
        assert 4 not in domain
        assert "x" not in domain

    def test_index_of_absent_value(self):
        with pytest.raises(ValueError):
            IntRangeDomain(0, 3).index(9)


class TestEnumDomain:
    def test_values_preserved_in_order(self):
        domain = EnumDomain("color", ["red", "green", "blue"])
        assert domain.values == ("red", "green", "blue")
        assert domain.index("green") == 1

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            EnumDomain("bad", ["x", "x"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EnumDomain("empty", [])


class TestTupleDomain:
    def test_product_order(self):
        domain = TupleDomain(BoolDomain(), IntRangeDomain(0, 1))
        assert domain.values == ((False, 0), (False, 1), (True, 0), (True, 1))

    def test_triple_size(self):
        domain = TupleDomain(BoolDomain(), BoolDomain(), IntRangeDomain(0, 2))
        assert len(domain) == 2 * 2 * 3

    def test_no_components_rejected(self):
        with pytest.raises(ValueError):
            TupleDomain()


class TestSeqDomain:
    def test_counts_all_lengths(self):
        domain = SeqDomain(BoolDomain(), 2)
        # 1 empty + 2 singletons + 4 pairs
        assert len(domain) == 7
        assert domain.values[0] == ()

    def test_ordered_by_length(self):
        domain = SeqDomain(EnumDomain("ab", ["a", "b"]), 2)
        lengths = [len(v) for v in domain.values]
        assert lengths == sorted(lengths)

    def test_zero_length(self):
        assert SeqDomain(BoolDomain(), 0).values == ((),)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SeqDomain(BoolDomain(), -1)


class TestOptionDomain:
    def test_bot_first(self):
        domain = OptionDomain(IntRangeDomain(0, 1))
        assert domain.values == (BOT, 0, 1)

    def test_bot_is_singleton(self):
        assert Bottom() is BOT
        assert repr(BOT) == "⊥"

    def test_bot_not_equal_to_values(self):
        domain = OptionDomain(IntRangeDomain(0, 3))
        assert domain.index(BOT) == 0
        assert BOT != 0


class TestDomainEquality:
    def test_structural_equality(self):
        assert IntRangeDomain(0, 2) == IntRangeDomain(0, 2)
        assert EnumDomain("x", [0, 1, 2]) == IntRangeDomain(0, 2)

    def test_bool_identified_with_01_range(self):
        # Python's False == 0 / True == 1 makes these domains structurally
        # equal — a deliberate consequence of value-based domain equality.
        assert BoolDomain() == IntRangeDomain(0, 1)

    def test_hashable(self):
        domains = {BoolDomain(), IntRangeDomain(0, 2), BoolDomain()}
        assert len(domains) == 2

    def test_repr_compact_for_large_domains(self):
        domain = IntRangeDomain(0, 100)
        assert "101 values" in repr(domain)
