"""State spaces: encoding, decoding, reindexing, projections, partitions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.statespace import (
    BoolDomain,
    IntRangeDomain,
    State,
    StateSpace,
    Variable,
    space_of,
)


@pytest.fixture
def space() -> StateSpace:
    return space_of(a=BoolDomain(), n=IntRangeDomain(0, 2), b=BoolDomain())


class TestConstruction:
    def test_size_is_product(self, space):
        assert space.size == 2 * 3 * 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            StateSpace([Variable("x", BoolDomain()), Variable("x", BoolDomain())])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StateSpace([])

    def test_var_lookup(self, space):
        assert space.var("n").domain == IntRangeDomain(0, 2)
        with pytest.raises(KeyError):
            space.var("missing")

    def test_contains(self, space):
        assert "a" in space
        assert "z" not in space


class TestEncoding:
    def test_roundtrip_all_states(self, space):
        for i in range(space.size):
            assert space.encode(space.decode(i)) == i

    def test_first_variable_varies_slowest(self, space):
        # index 0 is (False, 0, False); flipping `a` jumps by 6.
        assert space.decode(0) == (False, 0, False)
        assert space.decode(6) == (True, 0, False)

    def test_index_of_mapping(self, space):
        idx = space.index_of({"a": True, "n": 2, "b": False})
        assert space.decode(idx) == (True, 2, False)

    def test_index_of_requires_all_variables(self, space):
        with pytest.raises(ValueError):
            space.index_of({"a": True})

    def test_encode_wrong_arity(self, space):
        with pytest.raises(ValueError):
            space.encode((True,))

    def test_value_at_matches_decode(self, space):
        for i in range(space.size):
            values = space.decode(i)
            for k, name in enumerate(space.names):
                assert space.value_at(i, name) == values[k]


class TestReindex:
    def test_single_change(self, space):
        i = space.index_of({"a": False, "n": 1, "b": True})
        j = space.reindex(i, {"n": 2})
        assert space.decode(j) == (False, 2, True)

    def test_multi_change(self, space):
        i = space.index_of({"a": False, "n": 0, "b": False})
        j = space.reindex(i, {"a": True, "b": True, "n": 1})
        assert space.decode(j) == (True, 1, True)

    def test_identity_change(self, space):
        i = 5
        assert space.reindex(i, {}) == i

    @given(st.integers(min_value=0, max_value=11), st.integers(min_value=0, max_value=2))
    def test_reindex_matches_reencode(self, idx, n_val):
        space = space_of(a=BoolDomain(), n=IntRangeDomain(0, 2), b=BoolDomain())
        expected_values = list(space.decode(idx))
        expected_values[1] = n_val
        assert space.reindex(idx, {"n": n_val}) == space.encode(expected_values)


class TestState:
    def test_mapping_interface(self, space):
        state = space.state_of({"a": True, "n": 1, "b": False})
        assert state["a"] is True
        assert dict(state) == {"a": True, "n": 1, "b": False}
        assert len(state) == 3

    def test_updated_returns_new_state(self, space):
        state = space.state_at(0)
        changed = state.updated(n=2)
        assert changed["n"] == 2
        assert state["n"] == 0

    def test_immutability(self, space):
        state = space.state_at(0)
        with pytest.raises(AttributeError):
            state.index = 3

    def test_equality_and_hash(self, space):
        assert space.state_at(3) == space.state_at(3)
        assert space.state_at(3) != space.state_at(4)
        assert len({space.state_at(1), space.state_at(1)}) == 1

    def test_out_of_range_rejected(self, space):
        with pytest.raises(IndexError):
            State(space, space.size)

    def test_states_iterates_everything(self, space):
        states = list(space.states())
        assert len(states) == space.size
        assert [s.index for s in states] == list(range(space.size))


class TestCylinderPartition:
    def test_group_count(self, space):
        _, n_groups = space.cylinder_partition(["a", "b"])
        assert n_groups == 4

    def test_groups_agree_on_projection(self, space):
        group_of, _ = space.cylinder_partition(["n"])
        for i in range(space.size):
            for j in range(space.size):
                same_group = group_of[i] == group_of[j]
                same_projection = space.value_at(i, "n") == space.value_at(j, "n")
                assert same_group == same_projection

    def test_empty_subset_single_group(self, space):
        group_of, n_groups = space.cylinder_partition([])
        assert n_groups == 1
        assert set(group_of) == {0}

    def test_full_subset_identifies_states(self, space):
        group_of, n_groups = space.cylinder_partition(space.names)
        assert n_groups == space.size
        assert len(set(group_of)) == space.size

    def test_cached(self, space):
        first = space.cylinder_partition(["a"])
        second = space.cylinder_partition(["a"])
        assert first is second

    def test_unknown_variable_rejected(self, space):
        with pytest.raises(KeyError):
            space.cylinder_partition(["nope"])


class TestProjection:
    def test_projection_values(self, space):
        i = space.index_of({"a": True, "n": 2, "b": False})
        assert space.projection(i, ["a", "b"]) == (True, False)
        assert space.projection(i, ["n"]) == (2,)

    def test_projection_ordered_by_declaration(self, space):
        i = space.index_of({"a": True, "n": 0, "b": False})
        # Requested order does not matter; declaration order does.
        assert space.projection(i, ["b", "a"]) == (True, False)
