"""Shared fixtures and hypothesis strategies for the test suite.

The random-program strategy generates small standard UNITY programs over
Boolean variables — the workhorse for the algebraic laws (S5 axioms,
junctivity, sst properties, model-checker cross-validation), which are
checked exhaustively per generated program.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import time
from pathlib import Path
from typing import List

import pytest
from hypothesis import strategies as st

from repro.predicates import Predicate
from repro.statespace import BoolDomain, IntRangeDomain, StateSpace, Variable, space_of
from repro.unity import Const, Program, Statement, Unary, Var, const, lnot, var

_SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture
def spawn_worker(tmp_path):
    """Factory: launch ``python -m repro.worker`` daemons, kill them after.

    Returns a callable ``spawn(name, key=None, key_file=False) ->
    (Popen, "host:port")``; the daemon binds an ephemeral port and
    announces it through a port file, so tests never race a hardcoded
    port.  ``key`` arms the daemon's HMAC handshake — via its
    environment by default, via ``--key-file`` when ``key_file`` is
    true; the inherited coordinator-side key env var is always stripped
    so spawns are deterministic regardless of the test session's env.
    """
    procs = []

    def spawn(name: str = "w", key=None, key_file: bool = False):
        port_file = tmp_path / f"{name}.port"
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_WORKER_KEY", None)
        command = [
            sys.executable, "-m", "repro.worker", "--port-file", str(port_file)
        ]
        if key is not None and key_file:
            path = tmp_path / f"{name}.key"
            path.write_text(key + "\n", encoding="utf-8")
            command += ["--key-file", str(path)]
        elif key is not None:
            env["REPRO_WORKER_KEY"] = key
        proc = subprocess.Popen(
            command,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        procs.append(proc)
        deadline = time.monotonic() + 15.0
        while not port_file.exists():
            if proc.poll() is not None:
                raise RuntimeError(f"worker daemon {name} died on startup")
            if time.monotonic() > deadline:
                proc.kill()
                raise RuntimeError(f"worker daemon {name} never announced a port")
            time.sleep(0.02)
        port = port_file.read_text(encoding="ascii").strip()
        return proc, f"127.0.0.1:{port}"

    yield spawn
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


@pytest.fixture
def two_bool_space() -> StateSpace:
    """The 4-state space over Booleans a, b."""
    return space_of(a=BoolDomain(), b=BoolDomain())


@pytest.fixture
def three_bool_space() -> StateSpace:
    """The 8-state space over Booleans a, b, c."""
    return space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())


@pytest.fixture
def mixed_space() -> StateSpace:
    """A space mixing Booleans and a small integer range (12 states)."""
    return space_of(flag=BoolDomain(), count=IntRangeDomain(0, 2), on=BoolDomain())


def make_counter_program() -> Program:
    """A tiny standard program: a counter gated by a flag.

    Variables: ``go : bool``, ``n : 0..3``.  ``n`` increments while ``go``
    holds; a second statement raises ``go``.  Used across the proof-theory
    tests because its reachability and progress structure is obvious.
    """
    space = space_of(go=BoolDomain(), n=IntRangeDomain(0, 3))
    statements = [
        Statement(
            name="tick",
            targets=("n",),
            exprs=(var("n") + const(1),),
            guard=(var("go")) & (var("n") < const(3)),
        ),
        Statement(name="start", targets=("go",), exprs=(const(True),)),
    ]
    init = Predicate.from_callable(space, lambda s: not s["go"] and s["n"] == 0)
    return Program(
        space=space,
        init=init,
        statements=statements,
        processes={"Clock": ("n",), "Ctl": ("go",)},
        name="counter",
    )


@pytest.fixture
def counter_program() -> Program:
    return make_counter_program()


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------

BOOL_VARS = ("a", "b", "c")


@st.composite
def bool_spaces(draw, max_vars: int = 3) -> StateSpace:
    """A space of 2–max_vars Boolean variables."""
    n = draw(st.integers(min_value=2, max_value=max_vars))
    return StateSpace([Variable(BOOL_VARS[i], BoolDomain()) for i in range(n)])


@st.composite
def guards_over(draw, names: List[str]):
    """A small Boolean guard expression over the given variables."""
    kind = draw(st.integers(min_value=0, max_value=4))
    name = draw(st.sampled_from(names))
    other = draw(st.sampled_from(names))
    if kind == 0:
        return Const(True)
    if kind == 1:
        return Var(name)
    if kind == 2:
        return Unary("not", Var(name))
    if kind == 3:
        return Var(name) & Var(other)
    return Var(name) | Unary("not", Var(other))


@st.composite
def random_programs(draw, max_vars: int = 3, max_statements: int = 3) -> Program:
    """A random small standard program over Boolean variables.

    Statements assign constants or other variables (possibly negated) under
    random guards; the initial condition is a random non-empty predicate.
    """
    space = draw(bool_spaces(max_vars))
    names = list(space.names)
    n_statements = draw(st.integers(min_value=1, max_value=max_statements))
    statements = []
    for k in range(n_statements):
        target = draw(st.sampled_from(names))
        source_kind = draw(st.integers(min_value=0, max_value=3))
        if source_kind == 0:
            rhs = Const(True)
        elif source_kind == 1:
            rhs = Const(False)
        elif source_kind == 2:
            rhs = Var(draw(st.sampled_from(names)))
        else:
            rhs = Unary("not", Var(draw(st.sampled_from(names))))
        guard = draw(guards_over(names))
        statements.append(
            Statement(name=f"s{k}", targets=(target,), exprs=(rhs,), guard=guard)
        )
    init_mask = draw(st.integers(min_value=1, max_value=space.full_mask))
    processes = {f"P{i}": (name,) for i, name in enumerate(names)}
    return Program(
        space=space,
        init=Predicate(space, init_mask),
        statements=statements,
        processes=processes,
        name="random",
    )


@st.composite
def predicates_over(draw, space: StateSpace) -> Predicate:
    """A uniformly random predicate over a fixed space."""
    mask = draw(st.integers(min_value=0, max_value=space.full_mask))
    return Predicate(space, mask)


@st.composite
def program_with_predicates(draw, n_predicates: int = 2):
    """A random program plus ``n_predicates`` random predicates over its space."""
    program = draw(random_programs())
    preds = tuple(
        Predicate(program.space, draw(st.integers(0, program.space.full_mask)))
        for _ in range(n_predicates)
    )
    return (program,) + preds
