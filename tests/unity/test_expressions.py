"""Expression AST: evaluation, substitution, free variables, knowledge terms."""

import pytest

from repro.statespace import BOT
from repro.unity import (
    Append,
    Binary,
    Const,
    Contains,
    EvalError,
    Index,
    IsPrefix,
    Ite,
    Knowledge,
    Length,
    Proj,
    TupleExpr,
    Unary,
    UnresolvedKnowledgeError,
    Var,
    as_expr,
    const,
    iff,
    implies,
    ite,
    knows,
    land,
    lnot,
    lor,
    tup,
    var,
)

STATE = {"x": 3, "y": 5, "flag": True, "seq": ("a", "b"), "pair": (1, "a"), "z": BOT}


class TestBasicEvaluation:
    def test_const(self):
        assert Const(42).eval(STATE) == 42

    def test_var(self):
        assert Var("x").eval(STATE) == 3

    def test_var_missing(self):
        with pytest.raises(EvalError):
            Var("nope").eval(STATE)

    def test_arithmetic(self):
        assert (var("x") + var("y")).eval(STATE) == 8
        assert (var("y") - const(1)).eval(STATE) == 4
        assert (var("x") * const(2)).eval(STATE) == 6
        assert (var("y") % const(3)).eval(STATE) == 2
        assert Unary("-", var("x")).eval(STATE) == -3

    def test_comparisons(self):
        assert (var("x") < var("y")).eval(STATE) is True
        assert (var("x") >= var("y")).eval(STATE) is False
        assert var("x").eq(const(3)).eval(STATE) is True
        assert var("x").ne(const(3)).eval(STATE) is False

    def test_reflected_operators(self):
        assert (1 + var("x")).eval(STATE) == 4
        assert (10 - var("x")).eval(STATE) == 7
        assert (2 * var("x")).eval(STATE) == 6

    def test_bot_compares_unequal(self):
        assert var("z").eq(const(0)).eval(STATE) is False
        assert var("z").eq(const(BOT)).eval(STATE) is True

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Binary("**", const(2), const(3))
        with pytest.raises(ValueError):
            Unary("abs", const(2))


class TestBooleanConnectives:
    def test_short_circuit_and(self):
        # Right operand would raise (indexing past end) if evaluated.
        guarded = land(const(False), Index(var("seq"), const(9)).eq(const("a")))
        assert guarded.eval(STATE) is False

    def test_short_circuit_or(self):
        guarded = lor(const(True), Index(var("seq"), const(9)).eq(const("a")))
        assert guarded.eval(STATE) is True

    def test_short_circuit_implies(self):
        guarded = implies(const(False), Index(var("seq"), const(9)))
        assert guarded.eval(STATE) is True

    def test_iff(self):
        assert iff(var("flag"), const(True)).eval(STATE) is True
        assert iff(var("flag"), const(False)).eval(STATE) is False

    def test_empty_junctions(self):
        assert land().eval(STATE) is True
        assert lor().eval(STATE) is False

    def test_lnot(self):
        assert lnot(var("flag")).eval(STATE) is False

    def test_ite(self):
        assert ite(var("flag"), var("x"), var("y")).eval(STATE) == 3
        assert ite(lnot(var("flag")), var("x"), var("y")).eval(STATE) == 5


class TestSequencesAndTuples:
    def test_index(self):
        assert var("seq")[const(1)].eval(STATE) == "b"

    def test_index_out_of_range(self):
        with pytest.raises(EvalError):
            var("seq")[const(5)].eval(STATE)

    def test_length(self):
        assert Length(var("seq")).eval(STATE) == 2

    def test_append(self):
        assert Append(var("seq"), const("c")).eval(STATE) == ("a", "b", "c")

    def test_append_non_sequence(self):
        with pytest.raises(EvalError):
            Append(var("x"), const(1)).eval(STATE)

    def test_prefix(self):
        assert IsPrefix(const(("a",)), var("seq")).eval(STATE) is True
        assert IsPrefix(const(("b",)), var("seq")).eval(STATE) is False
        assert IsPrefix(var("seq"), var("seq")).eval(STATE) is True

    def test_contains(self):
        assert Contains(const("a"), var("seq")).eval(STATE) is True
        assert Contains(const("z"), var("seq")).eval(STATE) is False

    def test_tuple_and_proj(self):
        pair = tup(var("x"), const("t"))
        assert pair.eval(STATE) == (3, "t")
        assert Proj(var("pair"), 0).eval(STATE) == 1
        assert Proj(var("pair"), 1).eval(STATE) == "a"

    def test_proj_out_of_range(self):
        with pytest.raises(EvalError):
            Proj(var("pair"), 5).eval(STATE)


class TestSubstitution:
    def test_simultaneous(self):
        # (x + y)[x := y, y := x] — classic swap; must not cascade.
        expr = var("x") + var("y")
        swapped = expr.subst({"x": var("y"), "y": var("x")})
        assert swapped.eval({"x": 1, "y": 10}) == 11
        assert repr(swapped) == "(y + x)"

    def test_subst_through_structures(self):
        expr = Append(var("seq"), var("x"))
        replaced = expr.subst({"x": const(9)})
        assert replaced.eval(STATE) == ("a", "b", 9)

    def test_subst_missing_is_identity(self):
        expr = var("x") + const(1)
        assert expr.subst({"q": const(0)}) == expr

    def test_subst_under_knowledge_blocked(self):
        term = knows("P", var("x").eq(const(1)))
        with pytest.raises(EvalError):
            term.subst({"x": const(2)})

    def test_subst_not_touching_knowledge_ok(self):
        term = knows("P", var("x").eq(const(1)))
        assert term.subst({"y": const(2)}) == term


class TestFreeVarsAndKnowledge:
    def test_free_vars(self):
        expr = ite(var("flag"), var("x") + var("y"), Length(var("seq")))
        assert expr.free_vars() == {"flag", "x", "y", "seq"}

    def test_knowledge_terms_collected(self):
        inner = knows("R", var("x").eq(const(1)))
        outer = knows("S", inner | var("flag"))
        expr = outer & lnot(inner)
        assert expr.knowledge_terms() == {inner, outer}

    def test_unresolved_knowledge_raises(self):
        term = knows("P", var("x").eq(const(1)))
        with pytest.raises(UnresolvedKnowledgeError):
            term.eval(STATE)

    def test_knowledge_structural_equality(self):
        a = knows("P", var("x").eq(const(1)))
        b = knows("P", var("x").eq(const(1)))
        assert a == b
        assert hash(a) == hash(b)
        assert a != knows("Q", var("x").eq(const(1)))


class TestCoercion:
    def test_as_expr_passthrough(self):
        e = var("x")
        assert as_expr(e) is e

    def test_as_expr_wraps_constants(self):
        assert as_expr(5) == Const(5)
        assert as_expr(True) == Const(True)

    def test_operator_sugar_coerces(self):
        assert (var("x") + 1).eval(STATE) == 4
        assert (var("x") < 10).eval(STATE) is True
