"""The UNITY text DSL: tokenizer, expressions, programs, errors."""

import pytest

from repro.figures import FIG1_TEXT, FIG2_TEXT
from repro.unity import (
    Binary,
    Const,
    Knowledge,
    ParseError,
    Unary,
    Var,
    parse_expression,
    parse_program,
    tokenize,
)


class TestTokenizer:
    def test_symbols(self):
        texts = [t.text for t in tokenize("x := y + 1 if !z [] a <= b => c")]
        assert texts == ["x", ":=", "y", "+", "1", "if", "!", "z", "[]",
                         "a", "<=", "b", "=>", "c"]

    def test_comments_stripped(self):
        tokens = tokenize("x # a comment\ny")
        assert [t.text for t in tokens] == ["x", "y"]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("x @ y")

    def test_range_token(self):
        assert [t.text for t in tokenize("0..3")] == ["0", "..", "3"]


class TestExpressionParsing:
    def test_precedence_and_over_or(self):
        expr = parse_expression("a || b && c")
        assert isinstance(expr, Binary) and expr.op == "or"
        assert isinstance(expr.right, Binary) and expr.right.op == "and"

    def test_precedence_cmp_over_and(self):
        expr = parse_expression("a == 1 && b == 2")
        assert expr.op == "and"
        assert expr.left.op == "=="

    def test_implication_right_associative(self):
        expr = parse_expression("a => b => c")
        assert expr.op == "=>"
        assert isinstance(expr.right, Binary) and expr.right.op == "=>"

    def test_not_binds_tightly(self):
        expr = parse_expression("!a && b")
        assert expr.op == "and"
        assert isinstance(expr.left, Unary)

    def test_arithmetic(self):
        expr = parse_expression("x + 2 * y")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        expr = parse_expression("(x + 2) * y")
        assert expr.op == "*"

    def test_knowledge_term(self):
        expr = parse_expression("K[P0](!x && y)")
        assert isinstance(expr, Knowledge)
        assert expr.process == "P0"

    def test_nested_knowledge(self):
        expr = parse_expression("K[S](K[R](x == 1))")
        assert isinstance(expr, Knowledge)
        assert isinstance(expr.formula, Knowledge)

    def test_indexing(self):
        expr = parse_expression("xs[i + 1]")
        assert repr(expr) == "xs[(i + 1)]"

    def test_booleans_and_negation(self):
        assert parse_expression("true") == Const(True)
        assert parse_expression("-3").eval({}) == -3

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expression("x + 1 )")

    def test_keywords_not_variables(self):
        with pytest.raises(ParseError):
            parse_expression("assign + 1")


class TestProgramParsing:
    def test_minimal_program(self):
        prog = parse_program(
            """
            program tiny
            var x : bool
            init !x
            assign flip : x := !x
            """
        )
        assert prog.name == "tiny"
        assert prog.space.size == 2
        assert prog.statement("flip").targets == ("x",)

    def test_fig1_structure(self):
        prog = parse_program(FIG1_TEXT)
        assert prog.is_knowledge_based()
        assert set(prog.processes) == {"P0", "P1"}
        assert prog.process("P1").variables == {"shared", "x"}
        assert len(prog.statements) == 2

    def test_fig2_structure(self):
        prog = parse_program(FIG2_TEXT)
        assert prog.space.size == 8
        assert {s.name for s in prog.statements} == {"set_y", "set_z"}

    def test_int_range_and_enum_types(self):
        prog = parse_program(
            """
            program typed
            var n : 0..3 ; m : 0..1
            var e : enum { red, green }
            assign s : n := n + 1 if n < 3
            """
        )
        assert prog.space.size == 4 * 2 * 2
        assert prog.space.var("e").domain.values == ("red", "green")

    def test_default_statement_labels(self):
        prog = parse_program(
            """
            program anon
            var x, y : bool
            assign x := true [] y := true
            """
        )
        assert [s.name for s in prog.statements] == ["s0", "s1"]

    def test_multiple_assignment(self):
        prog = parse_program(
            """
            program multi
            var x, y : bool
            assign swap : x, y := y, x
            """
        )
        swap = prog.statement("swap")
        state = prog.space.state_of({"x": True, "y": False})
        after = prog.step(state, swap)
        assert after["x"] is False and after["y"] is True

    def test_default_init_is_true(self):
        prog = parse_program(
            """
            program free
            var x : bool
            assign s : x := x
            """
        )
        assert prog.init.is_everywhere()

    def test_end_keyword_optional(self):
        with_end = parse_program("program p\nvar x : bool\nassign s : x := x\nend")
        without = parse_program("program p\nvar x : bool\nassign s : x := x")
        assert with_end.space == without.space


class TestProgramParsingErrors:
    def test_no_variables(self):
        with pytest.raises(ParseError):
            parse_program("program p\nassign s : x := 1")

    def test_no_assign_section(self):
        with pytest.raises(ParseError):
            parse_program("program p\nvar x : bool")

    def test_duplicate_init(self):
        with pytest.raises(ParseError):
            parse_program(
                "program p\nvar x : bool\ninit x\ninit !x\nassign s : x := x"
            )

    def test_bad_type(self):
        with pytest.raises(ParseError):
            parse_program("program p\nvar x : float\nassign s : x := x")

    def test_trailing_tokens(self):
        with pytest.raises(ParseError):
            parse_program("program p\nvar x : bool\nassign s : x := x\nend extra")

    def test_unterminated_expression(self):
        with pytest.raises(ParseError):
            parse_program("program p\nvar x : bool\ninit (x\nassign s : x := x")


class TestRoundTrip:
    def test_parsed_program_executes(self):
        prog = parse_program(
            """
            program gcd_ish
            var a : 0..7 ; b : 0..7
            init a == 6 && b == 4
            assign
              reduce_a : a := a - b if a > b
              [] reduce_b : b := b - a if b > a
            """
        )
        from repro.transformers import strongest_invariant

        si = strongest_invariant(prog)
        fixed = prog.fixed_point() & si
        # gcd(6, 4) = 2: the reachable fixed points have a = b = 2.
        for state in fixed.states():
            assert state["a"] == state["b"] == 2
