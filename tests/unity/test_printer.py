"""Pretty-printer: DSL round-trips and the unprintable boundary."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.figures import FIG1_TEXT, FIG2_TEXT
from repro.unity import (
    Ite,
    UnprintableError,
    const,
    expr_to_text,
    ite,
    parse_expression,
    parse_program,
    program_to_text,
    statement_to_text,
    var,
)

from ..conftest import random_programs


class TestExpressionRoundTrip:
    CASES = [
        "a && b || c",
        "a || b && c",
        "!(a || b)",
        "!a || b",
        "a => b => c",
        "(a => b) => c",
        "x + 2 * y",
        "(x + 2) * y",
        "x - 1 - 2",
        "x % 2 == 0 && y >= 3",
        "K[P](x == 1 && !done)",
        "K[S](K[R](v != 0))",
        "xs[i + 1] == 2",
        "true && !false",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_print_parse(self, text):
        first = parse_expression(text)
        printed = expr_to_text(first)
        second = parse_expression(printed)
        assert first == second, printed

    def test_minimal_parentheses(self):
        expr = parse_expression("a && b || c && d")
        assert expr_to_text(expr) == "a && b || c && d"

    def test_unprintable_ite(self):
        with pytest.raises(UnprintableError):
            expr_to_text(ite(var("a"), const(1), const(2)))

    def test_unprintable_constant(self):
        with pytest.raises(UnprintableError):
            expr_to_text(const("a-string"))


class TestProgramRoundTrip:
    @pytest.mark.parametrize("text", [FIG1_TEXT, FIG2_TEXT])
    def test_paper_figures_roundtrip(self, text):
        original = parse_program(text)
        reparsed = parse_program(program_to_text(original))
        assert reparsed.space == original.space
        assert reparsed.init == original.init
        assert len(reparsed.statements) == len(original.statements)
        for a, b in zip(original.statements, reparsed.statements):
            assert a.targets == b.targets
            assert a.guard == b.guard

    @given(random_programs())
    @settings(max_examples=30, deadline=None)
    def test_random_programs_roundtrip_semantically(self, program):
        """Printing and re-parsing preserves the transition semantics."""
        reparsed = parse_program(program_to_text(program))
        assert reparsed.space == program.space
        assert reparsed.init == program.init
        for stmt in program.statements:
            again = reparsed.statement(stmt.name)
            assert reparsed.successor_array(again) == program.successor_array(stmt)

    def test_statement_rendering(self):
        program = parse_program(FIG1_TEXT)
        text = statement_to_text(program.statement("consume"))
        assert text == "consume : x, shared := true, false if shared"

    def test_integer_domains_roundtrip(self):
        source = """
        program counting
        var n : 0..5 ; m : 2..3
        init n == 0 && m == 2
        assign bump : n := n + 1 if n < 5
        """
        program = parse_program(source)
        reparsed = parse_program(program_to_text(program))
        assert reparsed.space == program.space
        assert reparsed.init == program.init
