"""Programs: successor semantics, fixed points, processes, derived programs."""

import pytest

from repro.predicates import Predicate
from repro.statespace import BoolDomain, IntRangeDomain, space_of
from repro.unity import (
    EvalError,
    GuardDomainError,
    Program,
    Statement,
    assign,
    const,
    knows,
    var,
)

from ..conftest import make_counter_program


@pytest.fixture
def program():
    return make_counter_program()


class TestConstruction:
    def test_empty_assign_section_rejected(self):
        space = space_of(x=BoolDomain())
        with pytest.raises(ValueError):
            Program(space, Predicate.true(space), [])

    def test_duplicate_statement_names_rejected(self):
        space = space_of(x=BoolDomain())
        s = assign("s", {"x": const(True)})
        with pytest.raises(ValueError):
            Program(space, Predicate.true(space), [s, s])

    def test_undeclared_variable_rejected(self):
        space = space_of(x=BoolDomain())
        s = assign("s", {"x": var("ghost")})
        with pytest.raises(ValueError):
            Program(space, Predicate.true(space), [s])

    def test_unknown_process_variable_rejected(self):
        space = space_of(x=BoolDomain())
        s = assign("s", {"x": const(True)})
        with pytest.raises(KeyError):
            Program(space, Predicate.true(space), [s], processes={"P": ("y",)})

    def test_init_from_expr_and_callable(self):
        space = space_of(x=BoolDomain())
        s = assign("s", {"x": const(True)})
        by_expr = Program(space, ~var("x"), [s])
        by_callable = Program(space, lambda st: not st["x"], [s])
        assert by_expr.init == by_callable.init


class TestSuccessors:
    def test_successor_array_semantics(self, program):
        tick = program.statement("tick")
        array = program.successor_array(tick)
        for i, state in enumerate(program.space.states()):
            if state["go"] and state["n"] < 3:
                expected = state.updated(n=state["n"] + 1).index
            else:
                expected = i
            assert array[i] == expected

    def test_array_cached(self, program):
        tick = program.statement("tick")
        assert program.successor_array(tick) is program.successor_array(tick)

    def test_step(self, program):
        state = program.space.state_of({"go": True, "n": 1})
        after = program.step(state, program.statement("tick"))
        assert after["n"] == 2

    def test_domain_overflow_detected(self):
        space = space_of(n=IntRangeDomain(0, 1))
        runaway = assign("inc", {"n": var("n") + 1})  # no guard!
        prog = Program(space, Predicate.true(space), [runaway])
        with pytest.raises(GuardDomainError):
            prog.successor_array(runaway)

    def test_knowledge_based_statement_refused(self):
        space = space_of(x=BoolDomain())
        stmt = Statement(
            name="kb", targets=("x",), exprs=(const(True),), guard=knows("P", var("x"))
        )
        prog = Program(space, Predicate.true(space), [stmt], processes={"P": ("x",)})
        with pytest.raises(EvalError):
            prog.successor_array(stmt)


class TestFixedPoint:
    def test_counter_fixed_point(self, program):
        """FP: go ∧ n = 3 (both statements skip there)."""
        fp = program.fixed_point()
        expected = Predicate.from_callable(
            program.space, lambda s: s["go"] and s["n"] == 3
        )
        assert fp == expected

    def test_enabled_predicate(self, program):
        enabled = program.enabled(program.statement("tick"))
        assert enabled == Predicate.from_callable(
            program.space, lambda s: s["go"] and s["n"] < 3
        )


class TestProcesses:
    def test_lookup(self, program):
        assert program.process("Clock").variables == frozenset({"n"})
        with pytest.raises(KeyError):
            program.process("Nobody")

    def test_shared_memory_allowed(self):
        space = space_of(x=BoolDomain(), y=BoolDomain())
        s = assign("s", {"x": var("y")})
        prog = Program(
            space,
            Predicate.true(space),
            [s],
            processes={"P": ("x", "y"), "Q": ("y",)},
        )
        assert "y" in prog.process("P").variables
        assert "y" in prog.process("Q").variables


class TestDerivedPrograms:
    def test_with_init(self, program):
        stronger = program.init & Predicate.from_callable(
            program.space, lambda s: s["n"] == 0
        )
        derived = program.with_init(stronger)
        assert derived.init == stronger
        assert derived.statements == program.statements

    def test_resolve_requires_all_terms(self):
        space = space_of(x=BoolDomain())
        term = knows("P", var("x"))
        stmt = Statement(name="kb", targets=("x",), exprs=(const(True),), guard=term)
        prog = Program(space, Predicate.true(space), [stmt], processes={"P": ("x",)})
        with pytest.raises(KeyError):
            prog.resolve({})

    def test_resolve_produces_standard_program(self):
        space = space_of(x=BoolDomain())
        term = knows("P", var("x"))
        stmt = Statement(name="kb", targets=("x",), exprs=(const(True),), guard=term)
        prog = Program(space, ~var("x"), [stmt], processes={"P": ("x",)})
        resolved = prog.resolve({term: Predicate.false(space)})
        assert not resolved.is_knowledge_based()
        # Guard false everywhere: program is all-skip.
        assert resolved.fixed_point().is_everywhere()

    def test_knowledge_terms_collected(self):
        space = space_of(x=BoolDomain(), y=BoolDomain())
        t1 = knows("P", var("x"))
        t2 = knows("Q", ~var("y"))
        s1 = Statement(name="a", targets=("x",), exprs=(const(True),), guard=t1)
        s2 = Statement(name="b", targets=("y",), exprs=(const(True),), guard=t2)
        prog = Program(
            space,
            Predicate.true(space),
            [s1, s2],
            processes={"P": ("x",), "Q": ("y",)},
        )
        assert prog.knowledge_terms() == {t1, t2}
        assert prog.is_knowledge_based()
