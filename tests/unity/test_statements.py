"""Guarded multiple assignments: execution, wp, resolution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates import Predicate
from repro.statespace import State
from repro.unity import (
    Const,
    Statement,
    assign,
    const,
    knows,
    quantified,
    var,
)

from ..conftest import make_counter_program, program_with_predicates


class TestConstruction:
    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            Statement(name="bad", targets=("x", "y"), exprs=(const(1),))

    def test_duplicate_targets(self):
        with pytest.raises(ValueError):
            Statement(name="bad", targets=("x", "x"), exprs=(const(1), const(2)))

    def test_assign_helper(self):
        stmt = assign("inc", {"n": var("n") + 1}, guard=var("go"))
        assert stmt.targets == ("n",)
        assert stmt.read_vars() == {"n", "go"}
        assert stmt.written_vars() == {"n"}


class TestExecution:
    def test_simultaneous_swap(self):
        stmt = assign("swap", {"x": var("y"), "y": var("x")})
        out = stmt.apply({"x": 1, "y": 2})
        assert out == {"x": 2, "y": 1}

    def test_guard_false_is_skip(self):
        stmt = assign("inc", {"n": var("n") + 1}, guard=Const(False))
        assert stmt.apply({"n": 5}) == {"n": 5}

    def test_guard_evaluated_before_assignment(self):
        stmt = assign("move", {"x": const(0)}, guard=var("x").eq(const(1)))
        assert stmt.apply({"x": 1}) == {"x": 0}
        assert stmt.apply({"x": 2}) == {"x": 2}

    def test_untouched_variables_preserved(self):
        stmt = assign("set", {"a": const(True)})
        out = stmt.apply({"a": False, "b": 7})
        assert out["b"] == 7


class TestSymbolicWp:
    def test_wp_shape(self):
        stmt = assign("inc", {"n": var("n") + 1}, guard=var("go"))
        post = var("n").eq(const(2))
        wp = stmt.wp_expr(post)
        # go → n+1 == 2; ¬go → n == 2
        assert wp.eval({"n": 1, "go": True}) is True
        assert wp.eval({"n": 2, "go": True}) is False
        assert wp.eval({"n": 2, "go": False}) is True

    @given(data=st.data())
    @settings(max_examples=30)
    def test_symbolic_wp_agrees_with_semantic_wp(self, data):
        """wp by substitution == wp by successor preimage, on every state."""
        from repro.transformers import wp_statement

        program, q = data.draw(program_with_predicates(1))
        stmt = program.statements[0]
        semantic = wp_statement(program, stmt, q)
        for state in program.space.states():
            post_holds_here = q.holds_at(state)
            # Build a postcondition expression equivalent to q via a lookup.
            symbolic_value = stmt.wp_expr(
                _as_expr_of_predicate(q, program)
            ).eval(state)
            assert bool(symbolic_value) == semantic.holds_at(state)


def _as_expr_of_predicate(q: Predicate, program):
    """An Expr equivalent to q: disjunction of full-state equalities."""
    from repro.unity import land, lor

    terms = []
    for state in q.states():
        eqs = [var(name).eq(const(state[name])) for name in program.space.names]
        terms.append(land(*eqs))
    return lor(*terms)


class TestResolution:
    def test_resolve_replaces_knowledge(self, counter_program=None):
        program = make_counter_program()
        term = knows("Clock", var("go"))
        stmt = Statement(
            name="kb", targets=("n",), exprs=(const(0),), guard=term
        )
        concrete = Predicate.from_callable(program.space, lambda s: s["go"])
        resolved = stmt.resolve({term: concrete})
        assert not resolved.is_knowledge_based()
        state = program.space.state_of({"go": True, "n": 2})
        assert resolved.guard.eval(state) is True

    def test_resolve_missing_term(self):
        term = knows("P", var("go"))
        stmt = Statement(name="kb", targets=("n",), exprs=(const(0),), guard=term)
        with pytest.raises(KeyError):
            stmt.resolve({})

    def test_resolve_nested_structure(self):
        program = make_counter_program()
        term = knows("Clock", var("go"))
        guard = (var("n") < const(3)) & term
        stmt = Statement(name="kb", targets=("n",), exprs=(const(0),), guard=guard)
        concrete = Predicate.true(program.space)
        resolved = stmt.resolve({term: concrete})
        assert resolved.knowledge_terms() == frozenset()
        state = program.space.state_of({"go": False, "n": 1})
        assert resolved.guard.eval(state) is True


class TestQuantified:
    def test_generates_family(self):
        family = quantified(
            "shift_{}",
            range(3),
            lambda i: assign(
                "tmp", {"x": var("x") + i}, guard=var("x").eq(const(i))
            ),
        )
        assert [s.name for s in family] == ["shift_0", "shift_1", "shift_2"]
        assert family[2].apply({"x": 2}) == {"x": 4}

    def test_name_collision_rejected(self):
        with pytest.raises(ValueError):
            quantified(
                "same",
                range(2),
                lambda i: assign("tmp", {"x": const(i)}),
            )
