"""Program union ``F ▯ G`` and UNITY's compositionality theorems."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates import Predicate
from repro.proofs import holds_unless
from repro.statespace import BoolDomain, space_of
from repro.transformers import strongest_invariant
from repro.unity import Program, assign, const, union_programs, var


def _component(space, name, statements, init):
    return Program(space, init, statements, name=name)


@pytest.fixture
def pair():
    space = space_of(a=BoolDomain(), b=BoolDomain())
    init = Predicate.from_callable(space, lambda s: not s["a"] and not s["b"])
    f = _component(space, "F", [assign("fa", {"a": const(True)})], init)
    g = _component(
        space, "G", [assign("gb", {"b": const(True)}, guard=var("a"))], init
    )
    return space, f, g


class TestUnionConstruction:
    def test_statement_concatenation(self, pair):
        space, f, g = pair
        union = union_programs(f, g)
        assert [s.name for s in union.statements] == ["fa", "gb"]
        assert union.init == f.init & g.init

    def test_name_clash_rejected(self, pair):
        space, f, _ = pair
        with pytest.raises(ValueError):
            union_programs(f, f)

    def test_cross_space_rejected(self, pair):
        space, f, _ = pair
        other_space = space_of(x=BoolDomain())
        other = _component(
            other_space, "H", [assign("hx", {"x": const(True)})],
            Predicate.true(other_space),
        )
        with pytest.raises(ValueError):
            union_programs(f, other)

    def test_process_merge(self):
        space = space_of(a=BoolDomain(), b=BoolDomain())
        f = Program(
            space, Predicate.true(space), [assign("fa", {"a": const(True)})],
            processes={"P": ("a",)}, name="F",
        )
        g = Program(
            space, Predicate.true(space), [assign("gb", {"b": const(True)})],
            processes={"P": ("a",), "Q": ("b",)}, name="G",
        )
        union = union_programs(f, g)
        assert set(union.processes) == {"P", "Q"}

    def test_conflicting_process_views_rejected(self):
        space = space_of(a=BoolDomain(), b=BoolDomain())
        f = Program(
            space, Predicate.true(space), [assign("fa", {"a": const(True)})],
            processes={"P": ("a",)}, name="F",
        )
        g = Program(
            space, Predicate.true(space), [assign("gb", {"b": const(True)})],
            processes={"P": ("b",)}, name="G",
        )
        with pytest.raises(ValueError):
            union_programs(f, g)


class TestUnionTheorems:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_unless_composes(self, data):
        """UNITY's union theorem: relative to a common baseline,
        ``p unless q`` in F ▯ G ⇔ it holds in F and in G."""
        space = space_of(a=BoolDomain(), b=BoolDomain())
        masks = st.integers(min_value=0, max_value=space.full_mask)
        init = Predicate(space, data.draw(masks) | 1)
        f = _component(
            space, "F",
            [assign("fa", {"a": const(data.draw(st.booleans()))},
                    guard=var("b") if data.draw(st.booleans()) else const(True))],
            init,
        )
        g = _component(
            space, "G",
            [assign("gb", {"b": const(data.draw(st.booleans()))},
                    guard=var("a") if data.draw(st.booleans()) else const(True))],
            init,
        )
        union = union_programs(f, g)
        p = Predicate(space, data.draw(masks))
        q = Predicate(space, data.draw(masks))
        baseline = Predicate.true(space)  # common invariant baseline
        in_union = holds_unless(union, p, q, si=baseline)
        in_parts = holds_unless(f, p, q, si=baseline) and holds_unless(
            g, p, q, si=baseline
        )
        assert in_union == in_parts

    def test_union_si_within_component_si(self, pair):
        """The union explores at least as much as each component alone
        (with the same init): SI_F ⊆ SI_{F▯G}."""
        space, f, g = pair
        union = union_programs(f, g)
        assert strongest_invariant(f).entails(strongest_invariant(union))

    def test_interaction_creates_new_reachability(self, pair):
        """G alone cannot set b (needs a); the union can — composition is
        genuinely more than the parts."""
        space, f, g = pair
        union = union_programs(f, g)
        b = Predicate.from_callable(space, lambda s: s["b"])
        assert (strongest_invariant(g) & b).is_false()
        assert not (strongest_invariant(union) & b).is_false()
