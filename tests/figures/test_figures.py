"""The paper's Figure 1 and Figure 2 — the headline counterexamples as tests.

These duplicate (at test granularity) what benchmarks E1/E2 regenerate; the
deeper per-mechanism assertions live in tests/core/test_kbp.py.
"""

import pytest

from repro.core import resolve_at, solve_si, solve_si_iterative, sp_hat
from repro.figures import (
    FIG1_TEXT,
    FIG2_TEXT,
    fig1_program,
    fig2_program,
    fig2_strong_init,
    fig2_weak_init,
)
from repro.predicates import Predicate, var_true
from repro.proofs import holds_leads_to
from repro.transformers import check_monotonic


class TestFigure1:
    def test_program_shape(self):
        program = fig1_program()
        assert program.space.size == 4
        assert program.is_knowledge_based()
        assert program.init.count() == 1

    def test_no_solution(self):
        assert not solve_si(fig1_program()).well_posed

    def test_iteration_cycles(self):
        assert not solve_si_iterative(fig1_program()).converged

    def test_sp_hat_nonmonotone(self):
        program = fig1_program()
        assert check_monotonic(sp_hat(program), program.space) is not None

    def test_text_constant_parses_to_same_program(self):
        from repro.unity import parse_program

        a = fig1_program()
        b = parse_program(FIG1_TEXT)
        assert a.space == b.space
        assert a.knowledge_terms() == b.knowledge_terms()


class TestFigure2:
    def test_si_flip(self):
        program = fig2_program()
        space = program.space
        weak_si = solve_si(program.with_init(fig2_weak_init(program))).strongest()
        strong_si = solve_si(program.with_init(fig2_strong_init(program))).strongest()
        assert weak_si == ~var_true(space, "y")
        assert strong_si == var_true(space, "x")
        assert not strong_si.entails(weak_si)  # non-monotone

    def test_liveness_flip(self):
        program = fig2_program()
        space = program.space
        z = var_true(space, "z")
        verdicts = {}
        for label, init in (
            ("weak", fig2_weak_init(program)),
            ("strong", fig2_strong_init(program)),
        ):
            variant = program.with_init(init)
            si = solve_si(variant).strongest()
            resolved = resolve_at(variant, si)
            verdicts[label] = holds_leads_to(
                resolved, Predicate.true(space), z, si
            )
        assert verdicts == {"weak": True, "strong": False}

    def test_default_init_is_weak(self):
        program = fig2_program()
        assert program.init == fig2_weak_init(program)
