"""Meta-soundness of the proof kernel.

Whatever the kernel derives must be semantically valid: every property
concluded by any chain of rule applications must pass the independent
semantic checkers (from-text for safety, fair model checking for
progress).  The hypothesis test below builds random derivations and
verifies their conclusions — a bug in any rule's side conditions would
surface as a semantically false conclusion.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates import Predicate
from repro.proofs import (
    Ensures,
    Invariant,
    LeadsTo,
    Proof,
    ProofContext,
    ProofError,
    Stable,
    Unless,
    holds_leads_to,
    holds_unless,
)
from repro.transformers import strongest_invariant

from ..conftest import make_counter_program, random_programs


def _semantically_valid(ctx: ProofContext, proof: Proof) -> bool:
    """Check a conclusion against the independent semantics."""
    conclusion = proof.conclusion
    program = ctx.program
    if isinstance(conclusion, Unless):
        return holds_unless(program, conclusion.p, conclusion.q, ctx.si)
    if isinstance(conclusion, Stable):
        return holds_unless(
            program, conclusion.p, Predicate.false(ctx.space), ctx.si
        )
    if isinstance(conclusion, Ensures):
        from repro.proofs import holds_ensures

        return holds_ensures(program, conclusion.p, conclusion.q, ctx.si)
    if isinstance(conclusion, Invariant):
        return ctx.si.entails(conclusion.p)
    if isinstance(conclusion, LeadsTo):
        return holds_leads_to(program, conclusion.p, conclusion.q, ctx.si)
    raise AssertionError(f"unknown property {conclusion}")


def _random_leaf(ctx: ProofContext, rng: random.Random):
    """Try to create a random valid leaf proof; None if the draw is invalid."""
    space = ctx.space
    p = Predicate(space, rng.getrandbits(space.size))
    q = Predicate(space, rng.getrandbits(space.size))
    kind = rng.randrange(5)
    try:
        if kind == 0:
            return ctx.unless_from_text(p, q)
        if kind == 1:
            return ctx.stable_from_text(p)
        if kind == 2:
            return ctx.invariant_by_si(p)
        if kind == 3:
            return ctx.leads_to_checked(p, q)
        return ctx.ensures_from_text(p, q)
    except ProofError:
        return None


def _random_step(ctx: ProofContext, proofs, rng: random.Random):
    """Try one random rule application over existing proofs."""
    space = ctx.space
    r = Predicate(space, rng.getrandbits(space.size))
    pick = lambda: rng.choice(proofs)
    rules = [
        lambda: ctx.consequence_weakening_unless(pick(), r),
        lambda: ctx.conjunction_unless(pick(), pick()),
        lambda: ctx.general_conjunction_unless(pick(), pick()),
        lambda: ctx.cancellation_unless(pick(), pick()),
        lambda: ctx.general_disjunction_unless([pick(), pick()]),
        lambda: ctx.antecedent_strengthening_unless(pick(), r),
        lambda: ctx.promote_ensures(pick()),
        lambda: ctx.transitivity(pick(), pick()),
        lambda: ctx.disjunction([pick(), pick()]),
        lambda: ctx.consequence_weakening_leads_to(pick(), r),
        lambda: ctx.antecedent_strengthening_leads_to(pick(), r),
        lambda: ctx.psp(pick(), pick()),
        lambda: ctx.implication(r, r | Predicate(space, rng.getrandbits(space.size))),
        lambda: ctx.invariant_weakening(pick(), r),
        lambda: ctx.invariant_conjunction(pick(), pick()),
        lambda: ctx.stable_conjunction(pick(), pick()),
        lambda: ctx.substitution(pick(), rng.choice([
            Unless(r, r), Stable(r), Invariant(r), LeadsTo(r, r), Ensures(r, r)
        ])),
    ]
    try:
        return rng.choice(rules)()
    except (ProofError, IndexError):
        return None


@given(random_programs(max_vars=2, max_statements=2), st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_random_derivations_are_sound(program, seed):
    """Fuzz the kernel: anything it accepts must be semantically true."""
    ctx = ProofContext(program)
    rng = random.Random(seed)
    proofs = []
    for _ in range(10):
        leaf = _random_leaf(ctx, rng)
        if leaf is not None:
            proofs.append(leaf)
    for _ in range(25):
        if not proofs:
            break
        derived = _random_step(ctx, proofs, rng)
        if derived is not None:
            proofs.append(derived)
    for proof in proofs:
        assert _semantically_valid(ctx, proof), proof.pretty()


def test_auto_strengthening_rule():
    """The new automatic rule (32)+search: proves exactly the invariants."""
    program = make_counter_program()
    ctx = ProofContext(program)
    si = strongest_invariant(program)
    valid = Predicate.from_callable(program.space, lambda s: s["go"] or s["n"] == 0)
    invalid = Predicate.from_callable(program.space, lambda s: s["n"] <= 2)
    proof = ctx.invariant_by_strengthening(valid)
    assert proof.conclusion == Invariant(valid)
    assert si.entails(valid)
    with pytest.raises(ProofError):
        ctx.invariant_by_strengthening(invalid)


@given(random_programs(max_vars=3, max_statements=3), st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_auto_strengthening_complete(program, seed):
    """invariant_by_strengthening succeeds iff [SI ⇒ p]."""
    rng = random.Random(seed)
    ctx = ProofContext(program)
    p = Predicate(program.space, rng.getrandbits(program.space.size))
    expected = ctx.si.entails(p)
    try:
        ctx.invariant_by_strengthening(p)
        proved = True
    except ProofError:
        proved = False
    assert proved == expected
