"""Fair model checking of leads-to: wlt fixpoint vs SCC refuter.

The two algorithms are independent implementations of UNITY's progress
semantics; the hypothesis test cross-validates them on random programs —
a disagreement would expose a bug in one of them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates import Predicate
from repro.proofs import (
    check_leads_to_both,
    holds_leads_to,
    refute_leads_to,
    wlt,
)
from repro.statespace import BoolDomain, IntRangeDomain, space_of
from repro.unity import Program, assign, const, var

from ..conftest import make_counter_program, program_with_predicates


@pytest.fixture
def program():
    return make_counter_program()


def p_of(program, fn):
    return Predicate.from_callable(program.space, fn)


class TestKnownVerdicts:
    def test_counter_reaches_top(self, program):
        """true ↦ n = 3: start must fire (fairness), then ticks must fire."""
        top = p_of(program, lambda s: s["n"] == 3)
        assert holds_leads_to(program, Predicate.true(program.space), top)
        assert refute_leads_to(program, Predicate.true(program.space), top) is None

    def test_unreachable_target_fails(self, program):
        p = p_of(program, lambda s: s["n"] == 0)
        q = Predicate.false(program.space)
        refutation = refute_leads_to(program, p, q)
        assert refutation is not None
        assert not holds_leads_to(program, p, q)

    def test_vacuous_antecedent(self, program):
        assert holds_leads_to(
            program, Predicate.false(program.space), Predicate.false(program.space)
        )

    def test_immediate_implication(self, program):
        p = p_of(program, lambda s: s["n"] == 2)
        q = p_of(program, lambda s: s["n"] >= 1)
        assert holds_leads_to(program, p, q)

    def test_fairness_is_essential(self):
        """Without fairness (i.e. one statement may be starved) progress
        would fail; UNITY's per-statement fairness makes it hold."""
        space = space_of(a=BoolDomain(), b=BoolDomain())
        program = Program(
            space,
            Predicate.from_callable(space, lambda s: not s["a"] and not s["b"]),
            [
                assign("set_a", {"a": const(True)}),
                assign("toggle_b", {"b": ~var("b")}),
            ],
            name="race",
        )
        a = Predicate.from_callable(space, lambda s: s["a"])
        # toggle_b alone would loop forever, but set_a must eventually fire.
        assert holds_leads_to(program, Predicate.true(space), a)

    def test_refutation_witness_is_meaningful(self, program):
        p = p_of(program, lambda s: True)
        q = p_of(program, lambda s: False)
        refutation = refute_leads_to(program, p, q)
        # The trap must be closed under every statement.
        trap = set(refutation.trap)
        for stmt in program.statements:
            array = program.successor_array(stmt)
            assert any(array[i] in trap for i in trap)


class TestWltProperties:
    def test_wlt_contains_target(self, program):
        q = p_of(program, lambda s: s["n"] >= 2)
        assert q.entails(wlt(program, q))

    def test_wlt_weakest(self, program):
        """Every state in wlt.q really leads to q (cross-check by refuter)."""
        q = p_of(program, lambda s: s["n"] == 3)
        w = wlt(program, q)
        assert refute_leads_to(program, w, q) is None

    def test_wlt_maximal(self, program):
        """No reachable state outside wlt.q leads to q."""
        from repro.transformers import strongest_invariant

        q = p_of(program, lambda s: False)
        w = wlt(program, q)
        si = strongest_invariant(program)
        outside = si & ~w
        for i in outside.indices():
            single = Predicate.from_indices(program.space, [i])
            assert refute_leads_to(program, single, q) is not None

    def test_states_off_si_vacuously_included(self, program):
        q = Predicate.false(program.space)
        w = wlt(program, q)
        from repro.transformers import strongest_invariant

        si = strongest_invariant(program)
        assert (~si).entails(w)


class TestCrossValidation:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_algorithms_agree_on_random_programs(self, data):
        program, p, q = data.draw(program_with_predicates(2))
        # check_leads_to_both raises AssertionError on disagreement.
        check_leads_to_both(program, p, q)

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_leads_to_transitive_semantically(self, data):
        program, p, q, r = data.draw(program_with_predicates(3))
        if holds_leads_to(program, p, q) and holds_leads_to(program, q, r):
            assert holds_leads_to(program, p, r)

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_leads_to_disjunctive_semantically(self, data):
        program, p, q, r = data.draw(program_with_predicates(3))
        if holds_leads_to(program, p, r) and holds_leads_to(program, q, r):
            assert holds_leads_to(program, p | q, r)
