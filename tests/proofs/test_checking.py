"""From-text checks of unless / ensures / stable / invariant (eqs. 27–33)."""

import pytest

from repro.predicates import Predicate
from repro.proofs import (
    helpful_statements,
    holds_ensures,
    holds_invariant,
    holds_invariant_by_induction,
    holds_stable,
    holds_unless,
)

from ..conftest import make_counter_program


@pytest.fixture
def program():
    return make_counter_program()


def p_of(program, fn):
    return Predicate.from_callable(program.space, fn)


class TestUnless:
    def test_holds_when_exit_only_via_q(self, program):
        p = p_of(program, lambda s: s["n"] == 1)
        q = p_of(program, lambda s: s["n"] == 2)
        assert holds_unless(program, p, q)

    def test_fails_when_p_escapes_elsewhere(self, program):
        p = p_of(program, lambda s: s["n"] == 1)
        q = p_of(program, lambda s: s["n"] == 3)
        assert not holds_unless(program, p, q)

    def test_vacuous_when_danger_empty(self, program):
        p = p_of(program, lambda s: False)
        assert holds_unless(program, p, Predicate.false(program.space))

    def test_si_relativity(self, program):
        """Sanders' logic: the obligations are relative to SI [San91].

        ``¬go unless (go ∧ n = 0)`` holds on the reachable states (where
        ``¬go`` forces ``n = 0``) but fails absolutely: from the
        *unreachable* state (¬go, n = 2), ``start`` reaches (go, 2), which
        is in neither predicate.
        """
        p = p_of(program, lambda s: not s["go"])
        q = p_of(program, lambda s: s["go"] and s["n"] == 0)
        assert holds_unless(program, p, q)  # SI-relative (default)
        assert not holds_unless(program, p, q, si=Predicate.true(program.space))


class TestEnsures:
    def test_ensures_needs_single_helpful_statement(self, program):
        p = p_of(program, lambda s: s["go"] and s["n"] == 0)
        q = p_of(program, lambda s: s["n"] >= 1)
        assert holds_ensures(program, p, q)
        helpers = helpful_statements(program, p, q)
        assert [s.name for s in helpers] == ["tick"]

    def test_ensures_fails_without_progress(self, program):
        p = p_of(program, lambda s: not s["go"] and s["n"] == 0)
        q = p_of(program, lambda s: s["n"] >= 1)
        # `start` sets go but not n; `tick` needs go: no single statement
        # moves p into q (tick skips while ¬go).
        assert not holds_ensures(program, p, q)

    def test_ensures_fails_without_unless(self, program):
        p = p_of(program, lambda s: s["n"] <= 1)
        q = p_of(program, lambda s: s["n"] == 3)
        assert not holds_ensures(program, p, q)


class TestStable:
    def test_stable_go(self, program):
        assert holds_stable(program, p_of(program, lambda s: s["go"]))

    def test_unstable_n0(self, program):
        assert not holds_stable(program, p_of(program, lambda s: s["n"] == 0))

    def test_stable_upward_closed_counter(self, program):
        assert holds_stable(program, p_of(program, lambda s: s["n"] >= 2))


class TestInvariantRules:
    def test_eq32_direct_induction(self, program):
        p = p_of(program, lambda s: s["n"] <= 3)
        assert holds_invariant_by_induction(program, p)

    def test_eq32_requires_init(self, program):
        p = p_of(program, lambda s: s["go"])
        # Stable but does not hold initially.
        assert holds_stable(program, p)
        assert not holds_invariant_by_induction(program, p)

    def test_eq32_with_auxiliary(self, program):
        """(¬go ⇒ n = 0) is not inductive alone off SI, but SI-val..."""
        target = p_of(program, lambda s: s["go"] or s["n"] == 0)
        assert holds_invariant_by_induction(program, target)

    def test_eq5_by_si(self, program):
        assert holds_invariant(program, p_of(program, lambda s: s["n"] <= 3))
        assert not holds_invariant(program, p_of(program, lambda s: s["n"] <= 2))

    def test_induction_sound_wrt_si(self, program):
        """Anything proved by (32) really is an invariant per (5)."""
        candidates = [
            p_of(program, lambda s: s["n"] <= 3),
            p_of(program, lambda s: s["go"] or s["n"] == 0),
            p_of(program, lambda s: True),
        ]
        for p in candidates:
            if holds_invariant_by_induction(program, p):
                assert holds_invariant(program, p)
