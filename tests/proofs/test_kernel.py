"""The proof kernel: every rule, with valid and invalid applications."""

import pytest

from repro.predicates import Predicate
from repro.proofs import (
    Ensures,
    Invariant,
    LeadsTo,
    Proof,
    ProofContext,
    ProofError,
    Stable,
    Unless,
)

from ..conftest import make_counter_program


@pytest.fixture
def ctx():
    return ProofContext(make_counter_program())


def p_of(ctx, fn):
    return Predicate.from_callable(ctx.space, fn)


class TestLeaves:
    def test_unless_from_text(self, ctx):
        p = p_of(ctx, lambda s: s["n"] == 1)
        q = p_of(ctx, lambda s: s["n"] == 2)
        proof = ctx.unless_from_text(p, q)
        assert proof.conclusion == Unless(p, q)
        assert proof.rule == "unless-from-text"

    def test_unless_from_text_rejects_false_claims(self, ctx):
        p = p_of(ctx, lambda s: s["n"] == 1)
        q = p_of(ctx, lambda s: s["n"] == 3)
        with pytest.raises(ProofError):
            ctx.unless_from_text(p, q)

    def test_ensures_from_text(self, ctx):
        p = p_of(ctx, lambda s: s["go"] and s["n"] == 0)
        q = p_of(ctx, lambda s: s["n"] >= 1)
        proof = ctx.ensures_from_text(p, q)
        assert isinstance(proof.conclusion, Ensures)

    def test_stable_from_text(self, ctx):
        proof = ctx.stable_from_text(p_of(ctx, lambda s: s["go"]))
        assert isinstance(proof.conclusion, Stable)
        with pytest.raises(ProofError):
            ctx.stable_from_text(p_of(ctx, lambda s: s["n"] == 0))

    def test_invariant_by_induction_and_si(self, ctx):
        bound = p_of(ctx, lambda s: s["n"] <= 3)
        assert ctx.invariant_by_induction(bound).conclusion == Invariant(bound)
        assert ctx.invariant_by_si(bound).conclusion == Invariant(bound)
        with pytest.raises(ProofError):
            ctx.invariant_by_si(p_of(ctx, lambda s: s["n"] == 0))

    def test_assumption_must_be_registered(self, ctx):
        prop = Stable(p_of(ctx, lambda s: s["go"]))
        with pytest.raises(ProofError):
            ctx.assume(prop)
        ctx2 = ProofContext(ctx.program, assumptions=[prop])
        proof = ctx2.assume(prop)
        assert proof.rule == "assumption"
        assert proof.assumptions() == [prop]

    def test_model_checked_leaf(self, ctx):
        top = p_of(ctx, lambda s: s["n"] == 3)
        proof = ctx.leads_to_checked(ctx.true(), top)
        assert isinstance(proof.conclusion, LeadsTo)
        with pytest.raises(ProofError):
            ctx.leads_to_checked(ctx.true(), ctx.false())


class TestUnlessMetatheorems:
    def test_consequence_weakening(self, ctx):
        p = p_of(ctx, lambda s: s["n"] == 1)
        q = p_of(ctx, lambda s: s["n"] == 2)
        base = ctx.unless_from_text(p, q)
        weaker = p_of(ctx, lambda s: s["n"] >= 2)
        proof = ctx.consequence_weakening_unless(base, weaker)
        assert proof.conclusion == Unless(p, weaker)
        with pytest.raises(ProofError):
            ctx.consequence_weakening_unless(base, p_of(ctx, lambda s: s["n"] == 5 - 5))

    def test_conjunction(self, ctx):
        u1 = ctx.unless_from_text(
            p_of(ctx, lambda s: s["n"] == 1), p_of(ctx, lambda s: s["n"] == 2)
        )
        u2 = ctx.stable_from_text(p_of(ctx, lambda s: s["go"]))
        proof = ctx.conjunction_unless(u1, u2)
        expected_p = p_of(ctx, lambda s: s["n"] == 1 and s["go"])
        assert proof.conclusion.p == expected_p

    def test_general_conjunction(self, ctx):
        p1 = p_of(ctx, lambda s: s["n"] == 1)
        q1 = p_of(ctx, lambda s: s["n"] == 2)
        u1 = ctx.unless_from_text(p1, q1)
        p2 = p_of(ctx, lambda s: s["go"])
        u2 = ctx.stable_from_text(p2)
        proof = ctx.general_conjunction_unless(u1, u2)
        # q' = false kills two disjuncts: consequent is p2 ∧ q1.
        assert proof.conclusion.q == (p2 & q1)

    def test_cancellation(self, ctx):
        n1 = p_of(ctx, lambda s: s["n"] == 1)
        n2 = p_of(ctx, lambda s: s["n"] == 2)
        n3 = p_of(ctx, lambda s: s["n"] == 3)
        left = ctx.unless_from_text(n1, n2)
        right = ctx.unless_from_text(n2, n3)
        proof = ctx.cancellation_unless(left, right)
        assert proof.conclusion == Unless(n1 | n2, n3)

    def test_cancellation_middle_mismatch(self, ctx):
        n1 = p_of(ctx, lambda s: s["n"] == 1)
        n2 = p_of(ctx, lambda s: s["n"] == 2)
        n3 = p_of(ctx, lambda s: s["n"] == 3)
        left = ctx.unless_from_text(n1, n2)
        right = ctx.unless_from_text(n1 | n2, n3)
        with pytest.raises(ProofError):
            ctx.cancellation_unless(left, right)

    def test_general_disjunction(self, ctx):
        proofs = [
            ctx.unless_from_text(
                p_of(ctx, lambda s, k=k: s["n"] == k),
                p_of(ctx, lambda s, k=k: s["n"] == k + 1),
            )
            for k in (0, 1, 2)
        ]
        combined = ctx.general_disjunction_unless(proofs)
        assert isinstance(combined.conclusion, Unless)
        with pytest.raises(ProofError):
            ctx.general_disjunction_unless([])

    def test_antecedent_strengthening_sound_form(self, ctx):
        p = p_of(ctx, lambda s: s["n"] <= 2)
        q = p_of(ctx, lambda s: s["n"] == 3)
        base = ctx.unless_from_text(p, q)
        p_new = p_of(ctx, lambda s: s["n"] == 1)
        proof = ctx.antecedent_strengthening_unless(base, p_new)
        # Conclusion: p' unless q ∨ (p ∧ ¬p').
        assert proof.conclusion.p == p_new
        assert proof.conclusion.q == (q | (p & ~p_new))

    def test_stable_packaging(self, ctx):
        u = ctx.unless_from_text(p_of(ctx, lambda s: s["go"]), ctx.false())
        proof = ctx.stable_from_unless(u)
        assert isinstance(proof.conclusion, Stable)

    def test_stable_conjunction(self, ctx):
        s1 = ctx.stable_from_text(p_of(ctx, lambda s: s["go"]))
        s2 = ctx.stable_from_text(p_of(ctx, lambda s: s["n"] >= 1))
        proof = ctx.stable_conjunction(s1, s2)
        assert proof.conclusion.p == p_of(ctx, lambda s: s["go"] and s["n"] >= 1)


class TestProgressMetatheorems:
    def test_promotion_29(self, ctx):
        e = ctx.ensures_from_text(
            p_of(ctx, lambda s: s["go"] and s["n"] == 0),
            p_of(ctx, lambda s: s["n"] >= 1),
        )
        proof = ctx.promote_ensures(e)
        assert isinstance(proof.conclusion, LeadsTo)

    def test_transitivity_30(self, ctx):
        a = ctx.leads_to_checked(
            p_of(ctx, lambda s: s["n"] == 0), p_of(ctx, lambda s: s["n"] == 1)
        )
        b = ctx.leads_to_checked(
            p_of(ctx, lambda s: s["n"] == 1), p_of(ctx, lambda s: s["n"] == 3)
        )
        proof = ctx.transitivity(a, b)
        assert proof.conclusion == LeadsTo(
            p_of(ctx, lambda s: s["n"] == 0), p_of(ctx, lambda s: s["n"] == 3)
        )

    def test_transitivity_requires_link(self, ctx):
        a = ctx.leads_to_checked(
            p_of(ctx, lambda s: s["n"] == 0), p_of(ctx, lambda s: s["n"] == 1)
        )
        b = ctx.leads_to_checked(
            p_of(ctx, lambda s: s["n"] == 2), p_of(ctx, lambda s: s["n"] == 3)
        )
        with pytest.raises(ProofError):
            ctx.transitivity(a, b)

    def test_disjunction_31(self, ctx):
        target = p_of(ctx, lambda s: s["n"] == 3)
        parts = [
            ctx.leads_to_checked(p_of(ctx, lambda s, k=k: s["n"] == k), target)
            for k in (0, 1, 2)
        ]
        proof = ctx.disjunction(parts)
        assert proof.conclusion.p == p_of(ctx, lambda s: s["n"] <= 2)

    def test_disjunction_requires_common_target(self, ctx):
        a = ctx.leads_to_checked(
            p_of(ctx, lambda s: s["n"] == 0), p_of(ctx, lambda s: s["n"] >= 1)
        )
        b = ctx.leads_to_checked(
            p_of(ctx, lambda s: s["n"] == 1), p_of(ctx, lambda s: s["n"] >= 2)
        )
        with pytest.raises(ProofError):
            ctx.disjunction([a, b])

    def test_implication(self, ctx):
        proof = ctx.implication(
            p_of(ctx, lambda s: s["n"] == 2), p_of(ctx, lambda s: s["n"] >= 1)
        )
        assert isinstance(proof.conclusion, LeadsTo)
        with pytest.raises(ProofError):
            ctx.implication(
                p_of(ctx, lambda s: s["n"] >= 1), p_of(ctx, lambda s: s["n"] == 2)
            )

    def test_psp(self, ctx):
        progress = ctx.leads_to_checked(
            p_of(ctx, lambda s: s["n"] == 0), p_of(ctx, lambda s: s["n"] == 1)
        )
        safety = ctx.stable_from_text(p_of(ctx, lambda s: s["go"]))
        proof = ctx.psp(progress, safety)
        # (p ∧ r) ↦ (q ∧ r) ∨ false
        assert proof.conclusion.p == p_of(ctx, lambda s: s["n"] == 0 and s["go"])
        assert proof.conclusion.q == p_of(ctx, lambda s: s["n"] == 1 and s["go"])

    def test_induction(self, ctx):
        """↦ by well-founded descent on the distance 3 - n."""
        target = p_of(ctx, lambda s: s["n"] == 3)
        go = p_of(ctx, lambda s: s["go"])

        def family(m: int) -> Proof:
            level = p_of(ctx, lambda s, m=m: s["go"] and (3 - s["n"]) == m)
            if m == 0:
                return ctx.implication(level, target)
            below = p_of(ctx, lambda s, m=m: s["go"] and (3 - s["n"]) < m)
            return ctx.leads_to_checked(level, below | target)

        proof = ctx.induction(
            metric=lambda i: 3 - ctx.space.value_at(i, "n"),
            family=family,
            values=[0, 1, 2, 3],
            p=go,
            q=target,
        )
        assert proof.conclusion == LeadsTo(go, target)

    def test_induction_requires_coverage(self, ctx):
        target = p_of(ctx, lambda s: s["n"] == 3)
        go = p_of(ctx, lambda s: s["go"])
        with pytest.raises(ProofError):
            ctx.induction(
                metric=lambda i: 3 - ctx.space.value_at(i, "n"),
                family=lambda m: ctx.implication(target, target),
                values=[0],
                p=go,
                q=target,
            )


class TestSubstitution:
    def test_rewrite_modulo_si(self, ctx):
        """n ≥ 1 ≡ (n ≥ 1 ∧ go) on SI: properties may swap the forms."""
        a = p_of(ctx, lambda s: s["n"] >= 1)
        b = p_of(ctx, lambda s: s["n"] >= 1 and s["go"])
        base = ctx.stable_from_text(a)
        proof = ctx.substitution(base, Stable(b))
        assert proof.conclusion == Stable(b)

    def test_rejects_inequivalent_rewrites(self, ctx):
        a = p_of(ctx, lambda s: s["n"] >= 1)
        c = p_of(ctx, lambda s: s["n"] >= 2)
        base = ctx.stable_from_text(a)
        with pytest.raises(ProofError):
            ctx.substitution(base, Stable(c))

    def test_shape_mismatch_rejected(self, ctx):
        base = ctx.stable_from_text(p_of(ctx, lambda s: s["go"]))
        with pytest.raises(ProofError):
            ctx.substitution(base, Invariant(ctx.true()))


class TestProofObjects:
    def test_size_and_pretty(self, ctx):
        e = ctx.ensures_from_text(
            p_of(ctx, lambda s: s["go"] and s["n"] == 0),
            p_of(ctx, lambda s: s["n"] >= 1),
        )
        lt = ctx.promote_ensures(e, note="the paper's (29)")
        assert lt.size() == 2
        rendered = lt.pretty()
        assert "leadsto-promotion(29)" in rendered
        assert "the paper's (29)" in rendered

    def test_assumptions_collected_transitively(self, ctx):
        prop = Stable(p_of(ctx, lambda s: s["go"]))
        ctx2 = ProofContext(ctx.program, assumptions=[prop])
        leaf = ctx2.assume(prop)
        u = ctx2.unless_from_text(
            p_of(ctx, lambda s: s["n"] == 1), p_of(ctx, lambda s: s["n"] == 2)
        )
        combined = ctx2.conjunction_unless(u, leaf)
        assert combined.assumptions() == [prop]
