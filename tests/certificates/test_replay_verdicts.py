"""Every headline experiment verdict is re-established by the replayer.

The acceptance bar from the issue: each of E1 (Figure 1 has no solution),
E2 (Figure 2 init non-monotonicity), E8 (the KBP sequence-transmission
spec holds), E13 (the channel matrix), and E15 (wlt/refuter agreement,
folded into every liveness entry) must be re-derivable *from the
serialized certificate alone* — no solver reuse — and the artifacts must
be byte-identical whichever predicate backend emitted them.
"""

from __future__ import annotations

import pytest

from repro.certificates import loads
from repro.certificates.replay import replay_artifact
from repro.predicates import using_backend

BACKENDS = ["int", "numpy"]

#: emitter key → {artifact stem: expected replay verdict}
EXPECTED = {
    "fig1": {"fig1-no-solution": "no-solution"},
    "fig1-sp-hat": {"fig1-sp-hat-nonmonotone": "sp-hat-nonmonotone"},
    "fig2": {"fig2-init-nonmonotonic": "init-nonmonotonic"},
    "s5": {"fig2-s5": "s5-verified"},
    "kbp-spec": {"seqtrans-kbp-L1-bounded1-spec": "spec-holds"},
    "seqtrans-reliable": {"seqtrans-standard-L1-reliable-spec": "spec-verified"},
    "seqtrans-bounded1": {"seqtrans-standard-L1-bounded1-spec": "spec-verified"},
    "seqtrans-lossy": {"seqtrans-standard-L1-lossy-spec": "spec-verified"},
}


@pytest.fixture(scope="module")
def emitted(tmp_path_factory):
    """Emit the headline artifacts once per backend; map stem → file."""
    from repro.certificates.emit import emit_all

    out = {}
    for backend in BACKENDS:
        directory = tmp_path_factory.mktemp(f"arts-{backend}")
        with using_backend(backend):
            paths = emit_all(directory, only=sorted(EXPECTED))
        out[backend] = {p.name[: -len(".cert.json")]: p for p in paths}
    return out


def test_emission_is_backend_independent(emitted):
    int_files, np_files = emitted["int"], emitted["numpy"]
    assert set(int_files) == set(np_files)
    for stem in int_files:
        assert (
            int_files[stem].read_bytes() == np_files[stem].read_bytes()
        ), f"{stem} differs between backends"


@pytest.mark.parametrize("backend", BACKENDS)
def test_headline_verdicts_replay(emitted, backend):
    expected = {
        stem: verdict
        for per_emitter in EXPECTED.values()
        for stem, verdict in per_emitter.items()
    }
    files = emitted["int"]  # byte-identical either way
    assert set(expected) <= set(files), "an expected artifact was not emitted"
    with using_backend(backend):
        for stem, verdict in sorted(expected.items()):
            artifact = loads(files[stem].read_text())
            outcome = replay_artifact(artifact)
            assert outcome.verdict == verdict, stem


def test_e2_details_include_both_flips(emitted):
    artifact = loads(emitted["int"]["fig2-init-nonmonotonic"].read_text())
    outcome = replay_artifact(artifact)
    assert outcome.verdict == "init-nonmonotonic"
    details = outcome.details
    assert details.get("safety_flips") or details.get("liveness_flips")


def test_e13_channel_matrix_rows(emitted):
    """Reliable and bounded1 satisfy all liveness; lossy is refuted (E13/E15)."""
    refuted = {}
    for channel in ("reliable", "bounded1", "lossy"):
        artifact = loads(
            emitted["int"][f"seqtrans-standard-L1-{channel}-spec"].read_text()
        )
        outcome = replay_artifact(artifact)
        assert outcome.verdict == "spec-verified"
        liveness = artifact.payload["liveness"]
        refuted[channel] = [
            e for e in liveness if e["kind"] == "leads-to-refutation"
        ]
    assert not refuted["reliable"]
    assert not refuted["bounded1"]
    assert refuted["lossy"], "the lossy channel must refute some |w|=k ↦ |w|>k"


def test_cli_replays_directory(emitted, capsys):
    from repro.certificates.replay import main

    directory = str(next(iter(emitted["int"].values())).parent)
    assert main([directory]) == 0
    out = capsys.readouterr().out
    assert "all verdicts re-established" in out
    assert main([directory, "--backend", "numpy"]) == 0


def test_cli_rejects_tampered_file(emitted, tmp_path, capsys):
    source = emitted["int"]["fig1-no-solution"]
    target = tmp_path / "bad.cert.json"
    target.write_text(source.read_text().replace('"witness":"escape"', '"witness":"escspe"'))
    from repro.certificates.replay import main

    assert main([str(tmp_path)]) == 1
    assert "FAIL" in capsys.readouterr().out
