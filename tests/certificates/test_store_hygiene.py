"""Store hygiene and the machine-readable replay CLI.

Directory scans must tolerate foreign JSON strays (skip + warn) without
ever silencing real damage, saves must dedupe by content, and ``--json``
must give callers the whole outcome as one parseable document with the
documented exit codes.
"""

from __future__ import annotations

import json

import pytest

from repro.certificates import loads, save
from repro.certificates.store import ForeignArtifactWarning, scan_artifacts


@pytest.fixture(scope="module")
def fig1_artifact():
    from repro.certificates.emit import certify_fig1

    ((_, artifact),) = certify_fig1()
    return artifact


# ----------------------------------------------------------------------
# scan_artifacts: skip foreign strays, keep damage loud
# ----------------------------------------------------------------------


class TestScanArtifacts:
    def test_foreign_json_is_skipped_with_a_warning(
        self, fig1_artifact, tmp_path
    ):
        good = save(fig1_artifact, tmp_path / "fig1.cert.json")
        (tmp_path / "notes.cert.json").write_text('{"hello": "world"}\n')
        (tmp_path / "list.cert.json").write_text('[1, 2, 3]\n')
        with pytest.warns(ForeignArtifactWarning) as caught:
            found = list(scan_artifacts(tmp_path))
        assert found == [good]
        assert len(caught) == 2
        assert "not a certificate envelope" in str(caught[0].message)

    def test_wrong_format_field_is_foreign(self, tmp_path):
        (tmp_path / "other.cert.json").write_text(
            '{"format": "somebody-elses/v9", "payload": {}}\n'
        )
        with pytest.warns(ForeignArtifactWarning):
            assert list(scan_artifacts(tmp_path)) == []

    def test_damaged_envelopes_are_still_yielded(
        self, fig1_artifact, tmp_path
    ):
        """Tampered and truncated files claim the format — they must reach
        the loader and fail there, never be silently skipped."""
        good = save(fig1_artifact, tmp_path / "fig1.cert.json")
        tampered = tmp_path / "bad.cert.json"
        doc = json.loads(good.read_text())
        doc["digest"] = "sha256:" + "0" * 64
        tampered.write_text(json.dumps(doc))
        torn = tmp_path / "torn.cert.json"
        torn.write_text(good.read_text()[: len(good.read_text()) // 2])
        not_json = tmp_path / "garbage.cert.json"
        not_json.write_text("%%% not json at all")
        found = list(scan_artifacts(tmp_path))
        assert found == sorted([good, tampered, torn, not_json])

    def test_directory_without_strays_warns_nothing(
        self, fig1_artifact, tmp_path, recwarn
    ):
        good = save(fig1_artifact, tmp_path / "fig1.cert.json")
        assert list(scan_artifacts(tmp_path)) == [good]
        assert not [
            w for w in recwarn if w.category is ForeignArtifactWarning
        ]


# ----------------------------------------------------------------------
# save: dedupe by content
# ----------------------------------------------------------------------


class TestSaveDedupe:
    def test_identical_resave_does_not_rewrite(self, fig1_artifact, tmp_path):
        path = save(fig1_artifact, tmp_path / "fig1.cert.json")
        before = path.stat().st_mtime_ns
        text = path.read_text()
        assert save(fig1_artifact, path) == path
        assert path.stat().st_mtime_ns == before
        assert path.read_text() == text

    def test_changed_content_is_rewritten(self, fig1_artifact, tmp_path):
        path = tmp_path / "fig1.cert.json"
        path.write_text('{"format": "stale"}\n')
        save(fig1_artifact, path)
        assert loads(path.read_text()).kind == fig1_artifact.kind

    def test_unreadable_existing_file_is_overwritten(
        self, fig1_artifact, tmp_path
    ):
        path = tmp_path / "fig1.cert.json"
        path.write_bytes(b"\xff\xfe garbage bytes")
        save(fig1_artifact, path)
        assert loads(path.read_text()).kind == fig1_artifact.kind


# ----------------------------------------------------------------------
# the replay CLI: stray tolerance + --json
# ----------------------------------------------------------------------


class TestReplayCli:
    def test_directory_with_stray_still_verifies(
        self, fig1_artifact, tmp_path, capsys
    ):
        from repro.certificates.replay import main

        save(fig1_artifact, tmp_path / "fig1.cert.json")
        (tmp_path / "stray.cert.json").write_text('{"tool": "other"}\n')
        with pytest.warns(ForeignArtifactWarning):
            assert main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1/1 artifacts verified" in out

    def test_json_mode_verified(self, fig1_artifact, tmp_path, capsys):
        from repro.certificates.replay import main

        save(fig1_artifact, tmp_path / "fig1.cert.json")
        assert main([str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"] == {
            "checked": 1,
            "verified": 1,
            "rejected": 0,
            "truncated": 0,
            "exit_code": 0,
        }
        (record,) = doc["artifacts"]
        assert record["status"] == "verified"
        assert record["kind"] == fig1_artifact.kind
        assert record["model"] == fig1_artifact.model
        assert record["verdict"]

    def test_json_mode_rejection(self, fig1_artifact, tmp_path, capsys):
        from repro.certificates.replay import main

        path = save(fig1_artifact, tmp_path / "fig1.cert.json")
        doc = json.loads(path.read_text())
        doc["digest"] = "sha256:" + "0" * 64
        path.write_text(json.dumps(doc))
        assert main([str(tmp_path), "--json"]) == 1
        out = json.loads(capsys.readouterr().out)
        assert out["summary"]["rejected"] == 1
        assert out["summary"]["exit_code"] == 1
        assert out["artifacts"][0]["status"] == "rejected"
        assert "digest mismatch" in out["artifacts"][0]["error"]

    def test_json_mode_truncation(self, fig1_artifact, tmp_path, capsys):
        from repro.certificates.replay import EXIT_TRUNCATED, main

        path = save(fig1_artifact, tmp_path / "fig1.cert.json")
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        assert main([str(tmp_path), "--json"]) == EXIT_TRUNCATED
        out = json.loads(capsys.readouterr().out)
        assert out["summary"]["truncated"] == 1
        assert out["summary"]["exit_code"] == EXIT_TRUNCATED
        assert out["artifacts"][0]["status"] == "truncated"

    def test_json_mode_includes_journals(
        self, fig1_artifact, tmp_path, capsys
    ):
        from repro.certificates.replay import main
        from repro.core.kbp import solve_si

        from tests.robustness.conftest import make_chaos_kbp

        save(fig1_artifact, tmp_path / "fig1.cert.json")
        journal_path = tmp_path / "solve.journal"
        solve_si(make_chaos_kbp(), workers=1, checkpoint=journal_path)
        assert (
            main([str(tmp_path), "--json", "--journal", str(journal_path)])
            == 0
        )
        out = json.loads(capsys.readouterr().out)
        (journal,) = out["journals"]
        assert journal["status"] == "verified"
        assert journal["complete"] is True
        assert out["summary"]["checked"] == 2

    def test_usage_error_exits_2(self, tmp_path):
        from repro.certificates.replay import main

        with pytest.raises(SystemExit) as exc:
            main([str(tmp_path), "--backend", "quantum"])
        assert exc.value.code == 2
