"""Serialization round-trips for the evidence subsystem.

Certificates must survive ``wrap → dumps → loads → decode`` without loss,
the canonical encoding must be deterministic (same payload, same bytes,
same digest), and predicate fingerprints must round-trip exactly on every
backend.  Hypothesis drives the predicate- and program-level properties;
the emitted-artifact round trips use the real Figure-1 bundle.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.certificates import (
    Artifact,
    CertificateError,
    FixpointCertificate,
    canonical_dumps,
    decode_certificate,
    load,
    loads,
    payload_digest,
    program_digest,
    save,
    wrap,
)
from repro.certificates.canonical import decode_predicate, encode_predicate
from repro.predicates import Predicate, using_backend
from repro.transformers import sst

from ..conftest import bool_spaces, random_programs


@st.composite
def predicates_over_random_space(draw):
    space = draw(bool_spaces())
    mask = draw(st.integers(min_value=0, max_value=(1 << space.size) - 1))
    return Predicate(space, mask)


@given(predicates_over_random_space())
def test_predicate_encoding_round_trips(p):
    encoded = encode_predicate(p)
    decoded = decode_predicate(encoded, p.space)
    assert decoded == p
    assert decoded.mask == p.mask


@given(predicates_over_random_space(), st.sampled_from(["int", "numpy"]))
def test_predicate_encoding_is_backend_independent(p, backend):
    with using_backend(backend):
        rebuilt = Predicate(p.space, p.mask)
        assert encode_predicate(rebuilt) == encode_predicate(p)


@given(random_programs())
@settings(max_examples=25, deadline=None)
def test_fixpoint_certificate_round_trips(program):
    result = sst(program, program.init)
    cert = FixpointCertificate(
        claim="si",
        program=program_digest(program),
        seed=program.init,
        chain=tuple(result.chain),
    )
    artifact = wrap(cert, "adhoc-test-model")
    rebuilt = loads(artifact.dumps())
    assert rebuilt == artifact
    decoded = decode_certificate(rebuilt.kind, rebuilt.payload, program.space)
    assert decoded.claim == cert.claim
    assert decoded.seed == cert.seed
    assert decoded.chain == cert.chain
    assert decoded.value == result.predicate


@given(random_programs())
@settings(max_examples=25, deadline=None)
def test_canonical_dumps_is_deterministic(program):
    cert = FixpointCertificate(
        claim="sst",
        program=program_digest(program),
        seed=program.init,
        chain=tuple(sst(program, program.init).chain),
    )
    first = wrap(cert, "adhoc-test-model").dumps()
    second = wrap(cert, "adhoc-test-model").dumps()
    assert first == second
    assert payload_digest(cert.to_payload()) == json.loads(first)["digest"]


def test_canonical_dumps_sorts_keys_and_strips_whitespace():
    text = canonical_dumps({"b": 1, "a": [1, 2], "c": {"y": 0, "x": 1}})
    assert text == '{"a":[1,2],"b":1,"c":{"x":1,"y":0}}'


def test_save_load_round_trip(tmp_path):
    from repro.certificates.emit import certify_fig1

    ((stem, artifact),) = certify_fig1()
    path = save(artifact, tmp_path / f"{stem}.cert.json")
    assert load(path) == artifact
    # The on-disk document carries the full envelope.
    doc = json.loads(path.read_text())
    assert doc["format"] == "repro-certificate/v1"
    assert doc["kind"] == "kbp-solve"
    assert doc["model"] == "fig1"
    assert doc["digest"].startswith("sha256:")


def test_artifact_files_are_byte_identical_across_backends(tmp_path):
    from repro.certificates.emit import emit_all

    with using_backend("int"):
        int_paths = emit_all(tmp_path / "int", only=["fig1", "fig2"])
    with using_backend("numpy"):
        np_paths = emit_all(tmp_path / "numpy", only=["fig1", "fig2"])
    assert [p.name for p in int_paths] == [p.name for p in np_paths]
    for a, b in zip(int_paths, np_paths):
        assert a.read_bytes() == b.read_bytes()


def test_loads_rejects_non_json_and_wrong_format():
    with pytest.raises(CertificateError, match="not valid JSON"):
        loads("{nope")
    with pytest.raises(CertificateError, match="unsupported artifact format"):
        loads('{"format":"repro-certificate/v999"}')


def test_wrap_rejects_unregistered_objects():
    with pytest.raises(CertificateError, match="not a registered certificate"):
        wrap(object(), "fig1")


def test_artifact_is_frozen():
    artifact = Artifact(kind="fixpoint", model="fig1", payload={})
    with pytest.raises(Exception):
        artifact.kind = "other"  # type: ignore[misc]
