"""Satellite features that ride along with the evidence subsystem.

* :meth:`Predicate.from_fingerprint` — strict inverse of ``fingerprint``;
* Kleene-chain instrumentation — ``FixpointResult.name/chain/stats`` and
  the chain surfaced through :func:`repro.transformers.sst`;
* :class:`TransformerCache` eviction counter (alongside hits/misses).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates import Predicate, using_backend
from repro.predicates.cache import TransformerCache
from repro.statespace import BoolDomain, space_of
from repro.transformers import sst

from ..conftest import make_counter_program, random_programs


# ----------------------------------------------------------------------
# Predicate.from_fingerprint
# ----------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=255))
def test_fingerprint_round_trips(mask):
    space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
    p = Predicate(space, mask)
    assert Predicate.from_fingerprint(space, p.fingerprint()) == p


@pytest.mark.parametrize("backend", ["int", "numpy"])
def test_fingerprint_round_trips_on_backend(backend):
    space = space_of(a=BoolDomain(), b=BoolDomain())
    with using_backend(backend):
        for mask in range(16):
            p = Predicate(space, mask)
            q = Predicate.from_fingerprint(space, p.fingerprint())
            assert q == p and q.mask == mask


def test_from_fingerprint_rejects_wrong_length():
    space = space_of(a=BoolDomain(), b=BoolDomain())  # 4 states → 1 byte
    with pytest.raises(ValueError, match="needs exactly 1"):
        Predicate.from_fingerprint(space, b"\x00\x00")
    with pytest.raises(ValueError, match="needs exactly 1"):
        Predicate.from_fingerprint(space, b"")


def test_from_fingerprint_rejects_out_of_space_bits():
    space = space_of(a=BoolDomain(), b=BoolDomain())  # 4 states
    with pytest.raises(ValueError, match="state indices"):
        Predicate.from_fingerprint(space, b"\x10")  # bit 4 set


# ----------------------------------------------------------------------
# Kleene-chain instrumentation
# ----------------------------------------------------------------------


def test_sst_result_carries_chain_and_name():
    program = make_counter_program()
    result = sst(program, program.init)
    assert result.name == f"sst chain of {program.name!r} (eq. 3)"
    assert result.chain[0].is_false()
    assert result.chain[-1] == result.predicate
    assert len(result.chain) == result.iterations + 1
    # Strictly ascending: each link adds at least one state.
    for lo, hi in zip(result.chain, result.chain[1:]):
        assert lo.entails(hi) and lo != hi


@given(random_programs())
@settings(max_examples=25, deadline=None)
def test_sst_chain_is_a_kleene_orbit(program):
    from repro.transformers import sp_program

    result = sst(program, program.init)
    for prev, nxt in zip(result.chain, result.chain[1:]):
        assert nxt == sp_program(program, prev) | program.init
    fixed = result.chain[-1]
    assert (sp_program(program, fixed) | program.init) == fixed


def test_fixpoint_result_stats_shape():
    program = make_counter_program()
    result = sst(program, program.init)
    # sst wraps iterate_to_fixpoint; its stats() shape is what the
    # benchmarks embed in their JSON rows.
    from repro.predicates.lattice import iterate_to_fixpoint

    raw = iterate_to_fixpoint(
        lambda x: x | program.init, Predicate.false(program.space), name="join"
    )
    stats = raw.stats()
    assert stats == {
        "name": "join",
        "iterations": raw.iterations,
        "converged": True,
    }
    assert raw.chain[-1] == raw.value
    assert result.iterations >= 1


# ----------------------------------------------------------------------
# TransformerCache eviction counter
# ----------------------------------------------------------------------


def test_cache_counts_hits_misses_and_evictions():
    space = space_of(a=BoolDomain(), b=BoolDomain(), c=BoolDomain())
    cache = TransformerCache(maxsize=2)
    preds = [Predicate(space, m) for m in (1, 2, 3)]
    for p in preds:
        assert cache.lookup("sp", "s", p) is None
        cache.store("sp", "s", p, ~p)
    assert cache.misses == 3 and cache.hits == 0
    assert cache.evictions == 1  # third insert evicted the LRU entry
    # The most recent two are hits; the evicted one is a miss again.
    assert cache.lookup("sp", "s", preds[2]) == ~preds[2]
    assert cache.lookup("sp", "s", preds[1]) == ~preds[1]
    assert cache.hits == 2
    assert cache.lookup("sp", "s", preds[0]) is None
    assert cache.misses == 4
    cache.store("sp", "s", preds[0], ~preds[0])
    assert cache.evictions == 2
    stats = cache.stats()
    assert set(stats) == {"hits", "misses", "evictions", "entries"}
    assert stats["entries"] == 2
    cache.clear()
    assert cache.stats() == {
        "hits": 0,
        "misses": 0,
        "evictions": 0,
        "entries": 0,
    }
