"""Adversarial tests: the replayer must reject tampered artifacts.

Two tiers of defense are exercised separately:

* **envelope** — mutate the payload but keep the recorded digest: the
  store rejects the document before the payload is even decoded;
* **semantic** — mutate the payload *and* re-issue the envelope (so the
  digest is valid again): the independent replay checks must catch the
  lie on their own.

The required tampering modes from the issue — dropped chain step, edited
witness state, swapped initial condition, truncated refutation table,
forged fingerprint — are all covered in the semantic tier, plus a few
extras (duplicated chain link, flipped verdict field, wrong model key).
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.certificates import (
    Artifact,
    CertificateError,
    loads,
)
from repro.certificates.replay import replay_artifact


# ----------------------------------------------------------------------
# shared emitted artifacts (emission is ~1s total; do it once per module)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def fig1_artifact():
    from repro.certificates.emit import certify_fig1

    ((_, artifact),) = certify_fig1()
    return artifact


@pytest.fixture(scope="module")
def fixpoint_artifact():
    from repro.certificates.emit import certify_fixpoint_invariant

    emitted = dict(certify_fixpoint_invariant())
    (artifact,) = [a for a in emitted.values() if a.kind == "fixpoint"]
    return artifact


@pytest.fixture(scope="module")
def refutation_artifact():
    """The lossy sequence-transmission spec check, refuted by a lasso."""
    from repro.certificates.emit import certify_seqtrans_standard

    ((_, artifact),) = certify_seqtrans_standard("lossy")
    return artifact


def reissue(artifact: Artifact, payload) -> Artifact:
    """Tamper *and* forge the digest: a fresh envelope over a mutated payload."""
    return Artifact(kind=artifact.kind, model=artifact.model, payload=payload)


def expect_rejection(artifact: Artifact, match=None):
    with pytest.raises(CertificateError, match=match):
        replay_artifact(artifact)


# ----------------------------------------------------------------------
# envelope tier: any payload edit without a digest forgery is fatal
# ----------------------------------------------------------------------


def test_envelope_rejects_payload_edit_with_stale_digest(fig1_artifact):
    doc = fig1_artifact.to_document()
    doc["payload"] = copy.deepcopy(doc["payload"])
    doc["payload"]["refutations"].pop()
    with pytest.raises(CertificateError, match="digest mismatch"):
        loads(json.dumps(doc))


def test_envelope_rejects_forged_digest_value(fig1_artifact):
    doc = fig1_artifact.to_document()
    doc["digest"] = "sha256:" + "0" * 64
    with pytest.raises(CertificateError, match="digest mismatch"):
        loads(json.dumps(doc))


def test_envelope_rejects_unknown_kind(fig1_artifact):
    doc = fig1_artifact.to_document()
    doc["kind"] = "totally-new-kind"
    with pytest.raises(CertificateError, match="unknown certificate kind"):
        loads(json.dumps(doc))


# ----------------------------------------------------------------------
# semantic tier: the digest is valid, the *claims* are not
# ----------------------------------------------------------------------


def test_replay_rejects_dropped_chain_step(fixpoint_artifact):
    payload = copy.deepcopy(fixpoint_artifact.payload)
    chain = payload["chain"]
    assert len(chain) >= 3, "need a middle link to drop"
    del chain[len(chain) // 2]
    expect_rejection(
        reissue(fixpoint_artifact, payload), "chain step dropped or edited"
    )


def test_replay_rejects_duplicated_chain_step(fixpoint_artifact):
    payload = copy.deepcopy(fixpoint_artifact.payload)
    payload["chain"].insert(1, payload["chain"][1])
    expect_rejection(reissue(fixpoint_artifact, payload))


def test_replay_rejects_edited_chain_endpoint(fixpoint_artifact):
    payload = copy.deepcopy(fixpoint_artifact.payload)
    last = payload["chain"][-1]
    size = last["size"]
    mask = int.from_bytes(bytes.fromhex(last["bits"]), "little")
    forged = (mask ^ 1) & ((1 << size) - 1)
    last["bits"] = forged.to_bytes((size + 7) // 8, "little").hex()
    expect_rejection(reissue(fixpoint_artifact, payload))


def test_replay_rejects_edited_witness_state(fig1_artifact):
    payload = copy.deepcopy(fig1_artifact.payload)
    escapes = [
        r for r in payload["refutations"] if r["witness"] == "escape"
    ]
    assert escapes, "Figure 1 refutations must include escape paths"
    states = escapes[0]["path"]["states"]
    # Point the final witness state somewhere else in the space.
    states[-1] = (states[-1] + 1) % payload["init"]["size"]
    expect_rejection(reissue(fig1_artifact, payload))


def test_replay_rejects_swapped_init(fig1_artifact):
    payload = copy.deepcopy(fig1_artifact.payload)
    size = payload["init"]["size"]
    full = (1 << size) - 1
    weaker = full.to_bytes((size + 7) // 8, "little").hex()
    payload["init"]["bits"] = weaker
    payload["program"]["init"]["bits"] = weaker
    expect_rejection(reissue(fig1_artifact, payload), "init")


def test_replay_rejects_truncated_refutation_table(fig1_artifact):
    payload = copy.deepcopy(fig1_artifact.payload)
    assert payload["refutations"], "Figure 1 must carry refutations"
    payload["refutations"].pop()
    expect_rejection(reissue(fig1_artifact, payload))


def test_replay_rejects_forged_fingerprint(fig1_artifact):
    payload = copy.deepcopy(fig1_artifact.payload)
    size = payload["init"]["size"]
    # Set bits beyond the space size: from_fingerprint must refuse this.
    payload["init"]["bits"] = (1 << size).to_bytes(
        (size + 8) // 8, "little"
    ).hex()
    expect_rejection(reissue(fig1_artifact, payload))


def test_replay_rejects_non_hex_fingerprint(fig1_artifact):
    payload = copy.deepcopy(fig1_artifact.payload)
    payload["init"]["bits"] = "zz"
    expect_rejection(reissue(fig1_artifact, payload), "not hex")


def test_replay_rejects_forged_no_solution_claim(fig1_artifact):
    """Move a refuted candidate into the solutions list: the resolution and
    chain checks must expose it as a non-solution."""
    payload = copy.deepcopy(fig1_artifact.payload)
    refutation = payload["refutations"].pop()
    payload["solutions"].append(
        {
            "candidate": refutation["candidate"],
            "resolution": refutation["resolution"],
            "chain": [payload["init"], refutation["candidate"]],
        }
    )
    expect_rejection(reissue(fig1_artifact, payload))


def test_replay_rejects_edited_trap(refutation_artifact):
    payload = copy.deepcopy(refutation_artifact.payload)
    assert any(
        e["kind"] == "leads-to-refutation" for e in payload["liveness"]
    ), "lossy channel must refute a liveness obligation"

    # Drop one state from the first trap we can find.
    def prune_trap(obj):
        if isinstance(obj, dict):
            if "trap" in obj and isinstance(obj["trap"], list) and obj["trap"]:
                obj["trap"] = obj["trap"][:-1]
                return True
            return any(prune_trap(v) for v in obj.values())
        if isinstance(obj, list):
            return any(prune_trap(v) for v in obj)
        return False

    assert prune_trap(payload)
    expect_rejection(reissue(refutation_artifact, payload))


def test_replay_rejects_wrong_model_key(fig1_artifact):
    mismatched = Artifact(
        kind=fig1_artifact.kind, model="fig2", payload=fig1_artifact.payload
    )
    expect_rejection(mismatched)


def test_replay_rejects_unregistered_model(fig1_artifact):
    unknown = Artifact(
        kind=fig1_artifact.kind, model="no-such-model", payload=fig1_artifact.payload
    )
    expect_rejection(unknown)


# ----------------------------------------------------------------------
# truncation tier: a partial file is neither valid nor "tampered" — it
# gets its own diagnosis and its own exit code
# ----------------------------------------------------------------------


def _truncate(path, fraction=0.6):
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * fraction)])


def test_load_rejects_midfile_truncation(fig1_artifact, tmp_path):
    from repro.certificates import TruncatedArtifactError
    from repro.certificates.store import load, save

    path = save(fig1_artifact, tmp_path / "fig1.cert.json")
    _truncate(path)
    with pytest.raises(TruncatedArtifactError, match="truncated"):
        load(path)


def test_cli_reports_truncation_with_distinct_exit_code(
    fig1_artifact, tmp_path, capsys
):
    from repro.certificates.replay import EXIT_TRUNCATED, main
    from repro.certificates.store import save

    path = save(fig1_artifact, tmp_path / "fig1.cert.json")
    _truncate(path)
    assert main([str(tmp_path)]) == EXIT_TRUNCATED == 3
    out = capsys.readouterr().out
    assert "TRUNCATED fig1.cert.json" in out
    assert "REJECTED" in out


def test_cli_corrupt_but_complete_artifact_is_a_plain_failure(
    fig1_artifact, tmp_path, capsys
):
    """A digest mismatch on a *complete* file must stay exit code 1 —
    truncation's re-emit remedy does not apply."""
    from repro.certificates.replay import main
    from repro.certificates.store import save

    path = save(fig1_artifact, tmp_path / "fig1.cert.json")
    doc = json.loads(path.read_text())
    doc["digest"] = "sha256:" + "0" * 64
    path.write_text(json.dumps(doc))
    assert main([str(tmp_path)]) == 1
    assert "FAIL fig1.cert.json" in capsys.readouterr().out
