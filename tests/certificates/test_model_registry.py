"""Spec-addressable model keys: parsed families, determinism, round-trips.

The service addresses programs by registry key alone, so a key must build
the same program — byte-identical digest — wherever and whenever it is
parsed, and malformed keys must fail with the family's grammar in the
message rather than a bare KeyError.
"""

from __future__ import annotations

import pytest

from repro.certificates import CertificateError, wrap
from repro.certificates.canonical import program_digest
from repro.certificates.models import KBP24_MAX_FREE_BITS, build_model
from repro.seqtrans import (
    DUPLICATING_REORDER,
    LOSSY,
    RELIABLE,
    bounded_loss,
    channel_from_key,
    channel_key,
    corrupting,
)


class TestChannelKeys:
    @pytest.mark.parametrize(
        "spec",
        [RELIABLE, LOSSY, DUPLICATING_REORDER, bounded_loss(1), bounded_loss(3), corrupting(2)],
        ids=lambda s: s.spec,
    )
    def test_round_trip(self, spec):
        assert channel_from_key(channel_key(spec)) == spec

    def test_tokens_are_registry_safe(self):
        assert channel_key(bounded_loss(1)) == "bounded1"
        assert channel_key(corrupting(2)) == "corrupting2"
        assert ":" not in channel_key(bounded_loss(4))

    def test_unknown_token_names_the_grammar(self):
        with pytest.raises(ValueError, match="bounded<budget>"):
            channel_from_key("bounded_loss:1")  # the spec syntax, not the key


class TestDynamicSeqtransKeys:
    def test_parsed_key_matches_pinned_builder(self):
        pinned = build_model("seqtrans-standard-L1-bounded1")
        # Bypass the lru_cache so the dynamic path genuinely re-parses.
        dynamic = build_model.__wrapped__("seqtrans-standard-L1-bounded1")
        assert program_digest(pinned.program) == program_digest(dynamic.program)
        assert pinned.safety_obligations == dynamic.safety_obligations

    def test_unpinned_length_and_channel(self):
        model = build_model("seqtrans-standard-L2-lossy")
        assert model.key == "seqtrans-standard-L2-lossy"
        # L=2 pins two liveness obligations (one per prefix length).
        assert len(model.liveness_obligations) == 2

    def test_unpinned_budget(self):
        model = build_model("seqtrans-standard-L1-bounded2")
        assert "bs" in model.program.space.names

    def test_bad_channel_token_is_a_certificate_error(self):
        with pytest.raises(CertificateError, match="unknown channel key"):
            build_model("seqtrans-standard-L1-warp")

    def test_unknown_key_lists_the_families(self):
        with pytest.raises(CertificateError, match="kbp24-f<k>"):
            build_model("no-such-model")


class TestKbp24Family:
    def test_deterministic_rebuild(self):
        one = build_model.__wrapped__("kbp24-f8")
        two = build_model.__wrapped__("kbp24-f8")
        assert program_digest(one.program) == program_digest(two.program)

    def test_free_bits_dial_the_candidate_count(self):
        for free in (4, 8, 12):
            model = build_model(f"kbp24-f{free}")
            space = model.program.space
            assert space.size == 24
            assert space.size - model.program.init.count() == free

    def test_out_of_range_free_bits_rejected(self):
        for bad in (0, KBP24_MAX_FREE_BITS + 1):
            with pytest.raises(CertificateError, match="free bits"):
                build_model(f"kbp24-f{bad}")

    def test_certified_solve_replays(self):
        """The service loop end to end at small scale: solve a kbp24 model
        with evidence, wrap it under its key, independently replay it."""
        from repro.certificates.replay import replay_artifact
        from repro.core.kbp import solve_si

        model = build_model("kbp24-f6")
        report = solve_si(model.program, emit_certificate=True, parallel="never")
        assert report.candidates_checked == 64
        artifact = wrap(report.certificate, "kbp24-f6")
        outcome = replay_artifact(artifact)
        assert outcome.verdict in ("well-posed", "no-solution")
        assert outcome.details["candidates"] == 64
