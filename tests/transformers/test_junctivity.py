"""Junctivity analyzers, validated on transformers with known profiles."""

import pytest

from repro.predicates import Predicate, scyl, wcyl
from repro.statespace import BoolDomain, space_of
from repro.transformers import (
    all_predicates,
    analyze,
    check_finitely_conjunctive,
    check_finitely_disjunctive,
    check_monotonic,
    check_or_continuous,
    check_universally_conjunctive,
    check_universally_disjunctive,
    wp_statement,
)

from ..conftest import make_counter_program


@pytest.fixture
def space():
    return space_of(a=BoolDomain(), b=BoolDomain())


class TestKnownProfiles:
    def test_identity_has_every_property(self, space):
        report = analyze(lambda p: p, space)
        assert report.monotonic is None
        assert report.universally_conjunctive is None
        assert report.universally_disjunctive is None
        assert report.or_continuous is None
        assert "NO" not in report.summary()

    def test_negation_is_nothing(self, space):
        assert check_monotonic(lambda p: ~p, space) is not None
        assert check_finitely_conjunctive(lambda p: ~p, space) is not None
        assert check_finitely_disjunctive(lambda p: ~p, space) is not None

    def test_constant_transformer(self, space):
        fixed = Predicate.from_indices(space, [0, 1])
        report = analyze(lambda p: fixed, space)
        assert report.monotonic is None
        # Constant maps fail the empty-bag cases: f.true ≠ true, f.false ≠ false.
        assert report.universally_conjunctive is not None
        assert report.universally_disjunctive is not None

    def test_wcyl_universally_conjunctive_not_disjunctive(self, space):
        f = lambda p: wcyl(["a"], p)
        assert check_universally_conjunctive(f, space) is None
        assert check_finitely_disjunctive(f, space) is not None

    def test_scyl_universally_disjunctive_not_conjunctive(self, space):
        f = lambda p: scyl(["a"], p)
        assert check_universally_disjunctive(f, space) is None
        assert check_finitely_conjunctive(f, space) is not None

    def test_wp_of_statement_fully_junctive(self):
        program = make_counter_program()
        stmt = program.statement("tick")
        f = lambda q: wp_statement(program, stmt, q)
        space = program.space
        assert check_monotonic(f, space) is None
        assert check_universally_conjunctive(f, space) is None
        assert check_universally_disjunctive(f, space) is None

    def test_monotone_implies_or_continuous_on_finite(self, space):
        """On finite spaces monotone maps are or-continuous (chains stabilize)."""
        f = lambda p: wcyl(["b"], p)
        assert check_monotonic(f, space) is None
        assert check_or_continuous(f, space) is None


class TestCounterexampleReporting:
    def test_witnesses_actually_refute(self, space):
        ce = check_finitely_disjunctive(lambda p: wcyl(["a"], p), space)
        assert ce is not None
        p, q = ce.witnesses
        f = lambda r: wcyl(["a"], r)
        assert not (f(p) | f(q)) == f(p | q)

    def test_monotonic_witnesses(self, space):
        ce = check_monotonic(lambda p: ~p, space)
        p, q = ce.witnesses
        assert p.entails(q)
        assert not (~p).entails(~q)


class TestEnumerationGuards:
    def test_all_predicates_count(self, space):
        assert sum(1 for _ in all_predicates(space)) == 2 ** space.size

    def test_size_guard(self):
        big = space_of(**{f"v{i}": BoolDomain() for i in range(6)})
        with pytest.raises(ValueError):
            list(all_predicates(big))

    def test_sampled_monotonicity_check(self):
        """Sampled mode works on spaces too large for exhaustion."""
        big = space_of(**{f"v{i}": BoolDomain() for i in range(6)})
        assert check_monotonic(lambda p: p, big, samples=50) is None
        assert check_monotonic(lambda p: ~p, big, samples=200) is not None
