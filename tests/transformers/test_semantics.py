"""sp / wp of statements and the program-level SP (paper eq. 26)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates import Predicate
from repro.transformers import (
    sp_program,
    sp_statement,
    wp_all_statements,
    wp_statement,
)

from ..conftest import make_counter_program, program_with_predicates


@pytest.fixture
def program():
    return make_counter_program()


class TestSpStatement:
    def test_image_semantics(self, program):
        """sp.s.p holds exactly at successors of p-states."""
        tick = program.statement("tick")
        p = Predicate.from_callable(program.space, lambda s: s["go"] and s["n"] == 1)
        image = sp_statement(program, tick, p)
        expected = {program.successor_array(tick)[i] for i in p.indices()}
        assert set(image.indices()) == expected

    def test_skip_when_guard_false(self, program):
        tick = program.statement("tick")
        p = Predicate.from_callable(program.space, lambda s: not s["go"])
        # Guard needs go; all p-states skip, so the image is p itself.
        assert sp_statement(program, tick, p) == p

    def test_sp_of_false_is_false(self, program):
        for stmt in program.statements:
            assert sp_statement(program, stmt, Predicate.false(program.space)).is_false()

    @given(data=st.data())
    @settings(max_examples=30)
    def test_sp_universally_disjunctive(self, data):
        """Images distribute over unions (deterministic relations)."""
        program, p, q = data.draw(program_with_predicates(2))
        stmt = program.statements[0]
        assert sp_statement(program, stmt, p | q) == (
            sp_statement(program, stmt, p) | sp_statement(program, stmt, q)
        )


class TestWpStatement:
    def test_preimage_semantics(self, program):
        tick = program.statement("tick")
        q = Predicate.from_callable(program.space, lambda s: s["n"] == 2)
        wp = wp_statement(program, tick, q)
        array = program.successor_array(tick)
        for i in range(program.space.size):
            assert wp.holds_at(i) == q.holds_at(array[i])

    def test_wp_of_true_is_true(self, program):
        for stmt in program.statements:
            assert wp_statement(program, stmt, Predicate.true(program.space)).is_everywhere()

    @given(data=st.data())
    @settings(max_examples=30)
    def test_wp_universally_conjunctive_and_disjunctive(self, data):
        """Total deterministic statements: wp distributes over ∧ and ∨."""
        program, p, q = data.draw(program_with_predicates(2))
        stmt = program.statements[0]
        assert wp_statement(program, stmt, p & q) == (
            wp_statement(program, stmt, p) & wp_statement(program, stmt, q)
        )
        assert wp_statement(program, stmt, p | q) == (
            wp_statement(program, stmt, p) | wp_statement(program, stmt, q)
        )

    @given(data=st.data())
    @settings(max_examples=30)
    def test_sp_wp_galois(self, data):
        """sp.s ⊣ wp.s:  [sp.s.p ⇒ q]  ≡  [p ⇒ wp.s.q]."""
        program, p, q = data.draw(program_with_predicates(2))
        stmt = program.statements[0]
        left = sp_statement(program, stmt, p).entails(q)
        right = p.entails(wp_statement(program, stmt, q))
        assert left == right


class TestProgramSP:
    def test_eq26_union_over_statements(self, program):
        p = Predicate.from_callable(program.space, lambda s: s["n"] == 0)
        expected = Predicate.false(program.space)
        for stmt in program.statements:
            expected = expected | sp_statement(program, stmt, p)
        assert sp_program(program, p) == expected

    @given(data=st.data())
    @settings(max_examples=30)
    def test_sp_monotone_and_or_continuous_prereqs(self, data):
        """The section-2 assumptions: SP total, monotone (or-continuity is
        automatic for monotone maps on finite lattices)."""
        program, p, q = data.draw(program_with_predicates(2))
        big = p | q
        assert sp_program(program, p).entails(sp_program(program, big))

    def test_wp_all_statements(self, program):
        q = Predicate.from_callable(program.space, lambda s: s["n"] <= 3)
        assert wp_all_statements(program, q).is_everywhere()

    def test_cross_space_rejected(self, program):
        from repro.statespace import BoolDomain, space_of

        other = space_of(x=BoolDomain())
        with pytest.raises(ValueError):
            sp_program(program, Predicate.true(other))


class TestVectorizedAgreement:
    def test_backends_agree_on_sp_and_wp(self):
        """The numpy backend must agree with the exact int reference backend."""
        from repro.predicates import using_backend

        program = make_counter_program()
        p = Predicate.from_callable(program.space, lambda s: s["n"] % 2 == 0)
        stmt = program.statement("tick")
        with using_backend("numpy"):
            program.transformer_cache.clear()
            fast_sp = sp_statement(program, stmt, Predicate(program.space, p.mask))
            fast_wp = wp_statement(program, stmt, Predicate(program.space, p.mask))
        with using_backend("int"):
            program.transformer_cache.clear()
            slow_sp = sp_statement(program, stmt, Predicate(program.space, p.mask))
            slow_wp = wp_statement(program, stmt, Predicate(program.space, p.mask))
        assert fast_sp == slow_sp
        assert fast_wp == slow_wp
