"""sst and the strongest invariant — paper eqs. (1)–(5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates import Predicate
from repro.runs import bfs_reachable
from repro.transformers import (
    is_invariant,
    is_stable,
    sp_program,
    sst,
    strongest_invariant,
)

from ..conftest import make_counter_program, program_with_predicates, random_programs


@pytest.fixture
def program():
    return make_counter_program()


class TestSst:
    @given(data=st.data())
    @settings(max_examples=40)
    def test_eq2_exists_and_is_fixed_point(self, data):
        """(2): sst.p exists; it is stable and weaker than p."""
        program, p = data.draw(program_with_predicates(1))
        result = sst(program, p)
        value = result.predicate
        assert p.entails(value)
        assert sp_program(program, value).entails(value)  # stable

    @given(data=st.data())
    @settings(max_examples=40)
    def test_eq1_strongest_among_stable_upper_bounds(self, data):
        """(1): any stable x weaker than p is weaker than sst.p."""
        program, p, x = data.draw(program_with_predicates(2))
        candidate = x | p  # ensure p ⇒ candidate
        if not sp_program(program, candidate).entails(candidate):
            return  # not stable; not a competitor
        assert sst(program, p).predicate.entails(candidate)

    @given(data=st.data())
    @settings(max_examples=40)
    def test_eq4_monotone(self, data):
        """(4): sst is monotone."""
        program, p, q = data.draw(program_with_predicates(2))
        weaker = p | q
        assert sst(program, p).predicate.entails(sst(program, weaker).predicate)

    def test_eq3_kleene_chain_value(self, program):
        """(3): sst.p = ∪ f^i(false) with f.x = SP.x ∨ p — computed directly."""
        p = program.init
        chain_value = Predicate.false(program.space)
        for _ in range(program.space.size + 1):
            chain_value = sp_program(program, chain_value) | p
        assert sst(program, p).predicate == chain_value

    def test_iterations_bounded_by_diameter(self, program):
        result = sst(program, program.init)
        assert 0 < result.iterations <= program.space.size + 1


class TestStrongestInvariant:
    def test_si_equals_bfs_reachability(self, program):
        assert strongest_invariant(program) == bfs_reachable(program)

    @given(random_programs())
    @settings(max_examples=40)
    def test_si_equals_bfs_on_random_programs(self, program):
        assert strongest_invariant(program) == bfs_reachable(program)

    def test_si_contains_init(self, program):
        assert program.init.entails(strongest_invariant(program))

    def test_counter_reachability(self, program):
        """The counter can reach any (go, n) with go or n = 0 initially ..."""
        si = strongest_invariant(program)
        # From (go=False, n=0): start may fire first, then ticks; n>0 without
        # go is unreachable.
        for state in program.space.states():
            expected = state["go"] or state["n"] == 0
            assert si.holds_at(state) == expected

    def test_knowledge_based_program_rejected(self):
        from repro.figures import fig1_program

        with pytest.raises(ValueError):
            strongest_invariant(fig1_program())


class TestStabilityQueries:
    def test_is_stable(self, program):
        go = Predicate.from_callable(program.space, lambda s: s["go"])
        assert is_stable(program, go)  # nothing ever clears go
        n_zero = Predicate.from_callable(program.space, lambda s: s["n"] == 0)
        assert not is_stable(program, n_zero)

    def test_is_invariant(self, program):
        bound = Predicate.from_callable(program.space, lambda s: s["n"] <= 3)
        assert is_invariant(program, bound)
        assert not is_invariant(
            program, Predicate.from_callable(program.space, lambda s: s["n"] == 0)
        )

    @given(data=st.data())
    @settings(max_examples=30)
    def test_stable_iff_sst_fixpoint(self, data):
        program, p = data.draw(program_with_predicates(1))
        assert is_stable(program, p) == (sst(program, p).predicate == p)
